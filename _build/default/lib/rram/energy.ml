open Logic

type pulse_counts = { loads : int; resets : int; imps : int; maj_pulses : int }

let static_counts (p : Program.t) =
  List.fold_left
    (fun acc step ->
      List.fold_left
        (fun acc micro ->
          match micro with
          | Isa.Load _ -> { acc with loads = acc.loads + 1 }
          | Isa.Reset _ -> { acc with resets = acc.resets + 1 }
          | Isa.Imp _ -> { acc with imps = acc.imps + 1 }
          | Isa.Maj_pulse _ -> { acc with maj_pulses = acc.maj_pulses + 1 })
        acc step)
    { loads = 0; resets = 0; imps = 0; maj_pulses = 0 }
    p.Program.steps

let total_pulses c = c.loads + c.resets + c.imps + c.maj_pulses

type weights = { load : float; reset : float; imp : float; maj : float }

let default_weights = { load = 1.0; reset = 1.0; imp = 1.2; maj = 1.0 }

let static_energy ?(weights = default_weights) p =
  let c = static_counts p in
  (weights.load *. float_of_int c.loads)
  +. (weights.reset *. float_of_int c.resets)
  +. (weights.imp *. float_of_int c.imps)
  +. (weights.maj *. float_of_int c.maj_pulses)

let switching_activity ?(seed = 0xE7E) ?(vectors = 32) (p : Program.t) =
  let rng = Prng.create seed in
  let n = p.Program.num_inputs in
  let flips = ref 0 in
  for _ = 1 to vectors do
    let input = Array.init n (fun _ -> Prng.bool rng) in
    let previous = ref None in
    ignore
      (Interp.run
         ~trace:(fun _ _ states ->
           (match !previous with
           | Some old ->
               Array.iteri (fun i s -> if s <> old.(i) then incr flips) states
           | None -> Array.iter (fun s -> if s then incr flips) states);
           previous := Some states)
         p input)
  done;
  float_of_int !flips /. float_of_int vectors
