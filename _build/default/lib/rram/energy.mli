(** Pulse and energy accounting for compiled programs (extension).

    The paper's latency metric counts {e steps}; each step applies one or
    more voltage pulses, and in RRAM technology the switching pulses
    dominate energy.  This module counts the pulses a program applies —
    statically (every micro-op) and dynamically (only the pulses that
    actually flip a device, averaged over executed vectors) — and converts
    them to energy with per-pulse weights.

    Default weights are in arbitrary units with the commonly reported
    relation E(SET) ≈ E(RESET) ≫ read energy; change them to a device
    calibration to get joules. *)

type pulse_counts = {
  loads : int;
  resets : int;
  imps : int;
  maj_pulses : int;
}

val static_counts : Program.t -> pulse_counts
(** Micro-ops per kind over the whole program. *)

val total_pulses : pulse_counts -> int

type weights = {
  load : float;
  reset : float;
  imp : float;
  maj : float;
}

val default_weights : weights
(** load = 1.0, reset = 1.0, imp = 1.2, maj = 1.0 (a.u.). *)

val static_energy : ?weights:weights -> Program.t -> float

val switching_activity :
  ?seed:int -> ?vectors:int -> Program.t -> float
(** Average number of device {e state flips} per execution over random
    input vectors — the dynamic component a pulse-count bound ignores. *)
