(** AIG→RRAM synthesis — the baseline of [12] (Bürger et al., RM 2013).

    Every AND node is computed through its NAND with three implications:

    {v
      load: r1 ← 0, r2 ← 0  (plus operand staging)
      s1:   r1 ← vb IMP r1   (= ¬b)
      s2:   r1 ← va IMP r1   (= ¬a ∨ ¬b = ¬(a·b))
      s3:   r2 ← r1 IMP r2   (= a·b)
    v}

    A complemented fanin playing the [b] role is free ([¬b] is then just a
    copy of the source); a complemented [a] needs one extra inversion.  The
    compiler always assigns a complemented fanin to [b] when possible.
    [`Sequential] emits ≈ 4–5 steps per node ([12]'s accounting);
    [`Levelized] runs each AIG level in parallel. *)

type mode = [ `Sequential | `Levelized ]

type result = {
  program : Program.t;
  aig_nodes : int;
  measured_rrams : int;
  measured_steps : int;
}

val compile : ?mode:mode -> Aig_lib.Aig.t -> result
