type reg = int
type operand = Input of int | Reg of reg | Const of bool

type micro =
  | Load of reg * operand
  | Reset of reg
  | Imp of { src : reg; dst : reg }
  | Maj_pulse of { p : operand; q : operand; dst : reg }

type step = micro list

let micro_dst = function
  | Load (r, _) -> r
  | Reset r -> r
  | Imp { dst; _ } -> dst
  | Maj_pulse { dst; _ } -> dst

let micro_reads = function
  | Load (_, o) -> [ o ]
  | Reset _ -> []
  | Imp { src; dst } -> [ Reg src; Reg dst ]
  | Maj_pulse { p; q; dst } -> [ p; q; Reg dst ]

let pp_operand ppf = function
  | Input i -> Format.fprintf ppf "in%d" i
  | Reg r -> Format.fprintf ppf "r%d" r
  | Const b -> Format.fprintf ppf "%d" (if b then 1 else 0)

let pp_micro ppf = function
  | Load (r, o) -> Format.fprintf ppf "r%d := %a" r pp_operand o
  | Reset r -> Format.fprintf ppf "r%d := FALSE" r
  | Imp { src; dst } -> Format.fprintf ppf "r%d <- r%d IMP r%d" dst src dst
  | Maj_pulse { p; q; dst } ->
      Format.fprintf ppf "r%d <- MAJ(%a, ~%a, r%d)" dst pp_operand p pp_operand q dst

let pp_step ppf step =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " || ")
    pp_micro ppf step
