(** Stuck-at fault injection and Monte-Carlo yield estimation (extension).

    RRAM endurance failures manifest as cells stuck in the low- or
    high-resistance state.  This module samples random stuck-at fault sets
    over a compiled program's crossbar and measures the functional yield —
    the fraction of fault configurations under which the program still
    computes its function on a set of test vectors.

    Because the two realizations need different device counts per gate
    (6 vs 4) and different step counts, they expose different fault
    surfaces; the [voter] example and the bench ablation quantify this. *)

type injection = { cell : Isa.reg; value : bool }

val random_faults : Logic.Prng.t -> num_cells:int -> rate:float -> injection list
(** Each cell is independently stuck with probability [rate] (value
    uniform). *)

val survives :
  Program.t -> reference:(bool array -> bool array) -> injection list -> bool array list -> bool
(** Does the faulty program still match the reference on every vector? *)

type yield_result = {
  trials : int;
  survivors : int;
  yield : float;
  mean_faults : float;
}

val functional_yield :
  ?seed:int ->
  ?trials:int ->
  ?vectors:int ->
  rate:float ->
  Program.t ->
  reference:(bool array -> bool array) ->
  yield_result
(** Monte-Carlo yield at the given per-cell fault rate; test vectors are
    random (plus the all-zero and all-one corners). *)
