(** Functional model of a single bipolar RRAM device.

    The state is the internal resistance: [true] = low resistance = logic 1,
    [false] = high resistance = logic 0.  The three operations below are the
    three voltage configurations of the paper:

    - {!clear}: V_CLEAR resets to 0 (the FALSE operation);
    - {!imp_pulse}: V_COND on device P and V_SET on device Q execute material
      implication, [q' = ¬p ∨ q] (Fig. 1, after Borghetti et al.);
    - {!maj_pulse}: driving the two terminals with the voltage levels encoded
      by logic values P and Q switches the device to
      [R' = P·R + ¬Q·R + P·¬Q = M(P, ¬Q, R)] (Fig. 2) — the intrinsic
      resistive-majority operation. *)

type t

val create : unit -> t
(** A fresh device in the 0 (high-resistance) state. *)

val read : t -> bool
val clear : t -> unit
val set : t -> unit
val write : t -> bool -> unit
(** Data loading: V_SET or V_CLEAR depending on the value. *)

val imp_pulse : p:t -> q:t -> unit
(** [q ← p IMP q].  [p] is unchanged. *)

val maj_pulse : t -> p:bool -> q:bool -> unit
(** [r ← M(p, ¬q, r)]. *)
