open Logic

let exhaustive_limit = 12

let vectors ?(seed = 0xBEEF) ?(random_count = 256) n =
  if n <= exhaustive_limit then
    List.init (1 lsl n) (fun m -> Array.init n (fun i -> m land (1 lsl i) <> 0))
  else begin
    let rng = Prng.create seed in
    Array.make n false
    :: Array.make n true
    :: List.init random_count (fun _ -> Array.init n (fun _ -> Prng.bool rng))
  end

let check ?seed program ~n ~reference =
  let vecs = vectors ?seed n in
  let rec go = function
    | [] -> Ok ()
    | v :: rest ->
        let got = Interp.run program v in
        let want = reference v in
        if got = want then go rest
        else
          Error
            (Printf.sprintf "mismatch on input %s: program %s, reference %s"
               (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list v)))
               (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list got)))
               (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list want))))
  in
  go vecs

let against_mig ?seed program mig =
  if Core.Mig.num_pis mig <> program.Program.num_inputs then Error "input count mismatch"
  else check ?seed program ~n:(Core.Mig.num_pis mig) ~reference:(Core.Mig_sim.eval mig)

let against_network ?seed program net =
  if Network.num_inputs net <> program.Program.num_inputs then
    Error "input count mismatch"
  else check ?seed program ~n:(Network.num_inputs net) ~reference:(Network.eval net)
