(** Instruction set for RRAM in-memory programs.

    A program is a sequence of {e steps}; all micro-operations inside a step
    execute in the same clock (they must touch disjoint destination devices;
    {!Program.validate} checks this).  The step count of a program is the
    latency metric "S" of the paper.

    Operand values are logic levels available to the voltage drivers: a
    primary-input line, the state of another RRAM (read non-destructively),
    or a constant rail. *)

type reg = int
(** RRAM index within the crossbar. *)

type operand =
  | Input of int  (** primary-input line *)
  | Reg of reg  (** state of another device *)
  | Const of bool  (** V_SET / V_CLEAR rail *)

type micro =
  | Load of reg * operand  (** data loading (write-through) *)
  | Reset of reg  (** FALSE *)
  | Imp of { src : reg; dst : reg }  (** [dst ← src IMP dst] *)
  | Maj_pulse of { p : operand; q : operand; dst : reg }
      (** [dst ← M(p, ¬q, dst)] — the intrinsic majority *)

type step = micro list

val micro_dst : micro -> reg
val micro_reads : micro -> operand list
val pp_operand : Format.formatter -> operand -> unit
val pp_micro : Format.formatter -> micro -> unit
val pp_step : Format.formatter -> step -> unit
