open Bdd_lib

type mode = [ `Sequential | `Levelized ]

type result = {
  program : Program.t;
  bdd_nodes : int;
  measured_rrams : int;
  measured_steps : int;
}

let compile ?(mode = `Levelized) (built : Bdd_of_network.result) =
  let man = built.Bdd_of_network.manager in
  let roots = built.Bdd_of_network.roots in
  let perm = built.Bdd_of_network.perm in
  let num_inputs = Array.length perm in
  let b = Program.Builder.create ~num_inputs in
  (* Reachable nodes grouped by variable level; also reference counts for
     result-register liveness. *)
  let by_level = Array.make (max 1 (Bdd.num_vars man)) [] in
  let refcount = Hashtbl.create 997 in
  let bump n =
    if not (Bdd.is_terminal n) then
      Hashtbl.replace refcount n (1 + try Hashtbl.find refcount n with Not_found -> 0)
  in
  let bdd_nodes =
    Bdd.fold_reachable man roots ~init:0 (fun n acc ->
        by_level.(Bdd.level man n) <- n :: by_level.(Bdd.level man n);
        bump (Bdd.low man n);
        bump (Bdd.high man n);
        acc + 1)
  in
  List.iter bump roots;
  (* Prologue: copy each used variable into a device and complement it. *)
  let used_levels =
    List.filter (fun v -> by_level.(v) <> []) (List.init (Bdd.num_vars man) (fun v -> v))
  in
  let var_reg = Hashtbl.create 17 and nvar_reg = Hashtbl.create 17 in
  let prologue_load = ref [] and prologue_inv = ref [] in
  List.iter
    (fun v ->
      let rx = Program.Builder.alloc b in
      let rnx = Program.Builder.alloc b in
      Hashtbl.replace var_reg v rx;
      Hashtbl.replace nvar_reg v rnx;
      prologue_load := Isa.Load (rx, Isa.Input perm.(v)) :: Isa.Reset rnx :: !prologue_load;
      prologue_inv := Isa.Imp { src = rx; dst = rnx } :: !prologue_inv)
    used_levels;
  Program.Builder.push_step b (List.rev !prologue_load);
  Program.Builder.push_step b (List.rev !prologue_inv);
  let result_reg = Hashtbl.create 997 in
  let value_operand n =
    if n = Bdd.bfalse then Isa.Const false
    else if n = Bdd.btrue then Isa.Const true
    else Isa.Reg (Hashtbl.find result_reg n)
  in
  let release child =
    if not (Bdd.is_terminal child) then begin
      let c = Hashtbl.find refcount child - 1 in
      Hashtbl.replace refcount child c;
      if c = 0 then Program.Builder.free b (Hashtbl.find result_reg child)
    end
  in
  (* One multiplexer: returns (load micros, 5 imp micros, result, temps). *)
  let mux_node n =
    let v = Bdd.level man n in
    let ra = Program.Builder.alloc b in
    let rb = Program.Builder.alloc b in
    let rc = Program.Builder.alloc b in
    let rd = Program.Builder.alloc b in
    let load =
      [
        Isa.Load (ra, value_operand (Bdd.high man n));
        Isa.Load (rb, value_operand (Bdd.low man n));
        Isa.Reset rc;
        Isa.Reset rd;
      ]
    in
    let imps =
      [
        Isa.Imp { src = Hashtbl.find var_reg v; dst = ra };
        Isa.Imp { src = Hashtbl.find nvar_reg v; dst = rb };
        Isa.Imp { src = rb; dst = rc };
        Isa.Imp { src = ra; dst = rc };
        Isa.Imp { src = rc; dst = rd };
      ]
    in
    Hashtbl.replace result_reg n rd;
    (load, imps, [ ra; rb; rc ])
  in
  (* Process variable levels bottom-up: children live at higher levels. *)
  let levels_desc = List.rev used_levels in
  List.iter
    (fun v ->
      let nodes = by_level.(v) in
      match mode with
      | `Sequential ->
          List.iter
            (fun n ->
              let load, imps, temps = mux_node n in
              Program.Builder.push_step b load;
              List.iter (fun m -> Program.Builder.push_step b [ m ]) imps;
              List.iter (Program.Builder.free b) temps;
              release (Bdd.low man n);
              release (Bdd.high man n))
            nodes
      | `Levelized ->
          let loads = ref [] and steps = Array.make 5 [] and temps = ref [] in
          List.iter
            (fun n ->
              let load, imps, t = mux_node n in
              loads := load @ !loads;
              List.iteri (fun i m -> steps.(i) <- m :: steps.(i)) imps;
              temps := t @ !temps)
            nodes;
          Program.Builder.push_step b (List.rev !loads);
          Array.iter (fun s -> Program.Builder.push_step b (List.rev s)) steps;
          List.iter (Program.Builder.free b) !temps;
          List.iter
            (fun n ->
              release (Bdd.low man n);
              release (Bdd.high man n))
            nodes)
    levels_desc;
  let outputs = Array.of_list (List.map value_operand roots) in
  let program = Program.Builder.finish b ~outputs in
  {
    program;
    bdd_nodes;
    measured_rrams = program.Program.num_regs;
    measured_steps = Program.num_steps program;
  }
