let run ?(stuck = []) ?trace (program : Program.t) inputs =
  if Array.length inputs <> program.Program.num_inputs then
    invalid_arg "Interp.run: input count";
  let devices = Array.init program.Program.num_regs (fun _ -> Device.create ()) in
  let enforce_stuck () =
    List.iter
      (fun (r, v) -> if r < Array.length devices then Device.write devices.(r) v)
      stuck
  in
  enforce_stuck ();
  let operand_value = function
    | Isa.Input i -> inputs.(i)
    | Isa.Reg r -> Device.read devices.(r)
    | Isa.Const b -> b
  in
  List.iteri
    (fun idx step ->
      (* Parallel semantics: latch all source values before any write. *)
      let actions =
        List.map
          (fun micro ->
            match micro with
            | Isa.Load (r, o) ->
                let v = operand_value o in
                fun () -> Device.write devices.(r) v
            | Isa.Reset r -> fun () -> Device.clear devices.(r)
            | Isa.Imp { src; dst } ->
                let p = Device.read devices.(src) in
                (* imp_pulse reads p at pulse time; p was latched, emulate by
                   a one-device scratch holding the latched value *)
                fun () ->
                  let scratch = Device.create () in
                  Device.write scratch p;
                  Device.imp_pulse ~p:scratch ~q:devices.(dst)
            | Isa.Maj_pulse { p; q; dst } ->
                let pv = operand_value p and qv = operand_value q in
                fun () -> Device.maj_pulse devices.(dst) ~p:pv ~q:qv)
          step
      in
      List.iter (fun act -> act ()) actions;
      enforce_stuck ();
      match trace with
      | Some f -> f (idx + 1) step (Array.map Device.read devices)
      | None -> ())
    program.Program.steps;
  Array.map
    (fun o ->
      match o with
      | Isa.Input i -> inputs.(i)
      | Isa.Reg r -> Device.read devices.(r)
      | Isa.Const b -> b)
    program.Program.outputs

let run_vectors program vectors = List.map (run program) vectors
