open Logic

type injection = { cell : Isa.reg; value : bool }

let random_faults rng ~num_cells ~rate =
  let acc = ref [] in
  for cell = 0 to num_cells - 1 do
    if Prng.float rng < rate then acc := { cell; value = Prng.bool rng } :: !acc
  done;
  !acc

let survives program ~reference faults vectors =
  let stuck = List.map (fun { cell; value } -> (cell, value)) faults in
  List.for_all
    (fun v -> Interp.run ~stuck program v = reference v)
    vectors

type yield_result = {
  trials : int;
  survivors : int;
  yield : float;
  mean_faults : float;
}

let functional_yield ?(seed = 0xFA17) ?(trials = 200) ?(vectors = 24) ~rate program
    ~reference =
  let rng = Prng.create seed in
  let n = program.Program.num_inputs in
  let test_vectors =
    Array.make n false
    :: Array.make n true
    :: List.init vectors (fun _ -> Array.init n (fun _ -> Prng.bool rng))
  in
  let survivors = ref 0 and total_faults = ref 0 in
  for _ = 1 to trials do
    let faults = random_faults rng ~num_cells:program.Program.num_regs ~rate in
    total_faults := !total_faults + List.length faults;
    if survives program ~reference faults test_vectors then incr survivors
  done;
  {
    trials;
    survivors = !survivors;
    yield = float_of_int !survivors /. float_of_int trials;
    mean_faults = float_of_int !total_faults /. float_of_int trials;
  }
