(** End-to-end verification: a compiled RRAM program must compute the same
    function as its source representation, executed on the device
    simulator.  Exhaustive for small input counts, seeded random vectors
    above. *)

val exhaustive_limit : int
(** 12 inputs. *)

val vectors : ?seed:int -> ?random_count:int -> int -> bool array list
(** Test vectors for [n] inputs: all [2^n] if [n ≤ exhaustive_limit],
    otherwise [random_count] (default 256) random vectors plus the all-zero
    and all-one corners. *)

val against_mig : ?seed:int -> Program.t -> Core.Mig.t -> (unit, string) result
val against_network :
  ?seed:int -> Program.t -> Logic.Network.t -> (unit, string) result
