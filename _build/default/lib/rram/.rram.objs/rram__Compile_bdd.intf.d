lib/rram/compile_bdd.mli: Bdd_lib Program
