lib/rram/seq_exec.ml: Array Compile_mig Core Interp List Logic Prng Program Seq
