lib/rram/device.ml:
