lib/rram/placement.mli: Format Program
