lib/rram/compile_mig.mli: Core Program
