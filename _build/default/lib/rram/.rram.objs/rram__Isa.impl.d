lib/rram/isa.ml: Format
