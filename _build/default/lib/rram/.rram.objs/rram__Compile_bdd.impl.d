lib/rram/compile_bdd.ml: Array Bdd Bdd_lib Bdd_of_network Hashtbl Isa List Program
