lib/rram/device.mli:
