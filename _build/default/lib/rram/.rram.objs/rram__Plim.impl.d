lib/rram/plim.ml: Array Core Format Hashtbl List Verify
