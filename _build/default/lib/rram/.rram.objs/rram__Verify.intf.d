lib/rram/verify.mli: Core Logic Program
