lib/rram/plim.mli: Core Format
