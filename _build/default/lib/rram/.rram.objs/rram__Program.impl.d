lib/rram/program.ml: Array Format Hashtbl Isa List
