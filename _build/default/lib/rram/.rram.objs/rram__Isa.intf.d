lib/rram/isa.mli: Format
