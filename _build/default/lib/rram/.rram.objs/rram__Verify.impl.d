lib/rram/verify.ml: Array Core Interp List Logic Network Printf Prng Program String
