lib/rram/compile_aig.ml: Aig Aig_lib Array Hashtbl Isa List Program
