lib/rram/compile_mig.ml: Array Core Hashtbl Isa List Program
