lib/rram/placement.ml: Array Format Hashtbl Isa List Printf Program String
