lib/rram/faults.ml: Array Interp Isa List Logic Prng Program
