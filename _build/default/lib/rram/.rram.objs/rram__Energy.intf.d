lib/rram/energy.mli: Program
