lib/rram/seq_exec.mli: Core Logic Program
