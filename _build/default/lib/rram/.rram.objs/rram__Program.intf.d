lib/rram/program.mli: Format Isa
