lib/rram/interp.mli: Isa Program
