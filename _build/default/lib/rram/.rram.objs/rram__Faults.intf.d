lib/rram/faults.mli: Isa Logic Program
