lib/rram/energy.ml: Array Interp Isa List Logic Prng Program
