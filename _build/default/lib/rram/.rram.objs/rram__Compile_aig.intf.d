lib/rram/compile_aig.mli: Aig_lib Program
