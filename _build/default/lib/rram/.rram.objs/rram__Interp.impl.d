lib/rram/interp.ml: Array Device Isa List Program
