type t = { mutable state : bool }

let create () = { state = false }
let read d = d.state
let clear d = d.state <- false
let set d = d.state <- true
let write d v = d.state <- v

let imp_pulse ~p ~q =
  (* V_COND on P cannot switch P; the interaction sets Q when P is 0. *)
  q.state <- (not p.state) || q.state

let maj_pulse r ~p ~q =
  (* Fig. 2: R' = P·Q̄ when R = 0 and P + Q̄ when R = 1, i.e. M(P, ¬Q, R). *)
  let nq = not q in
  r.state <- (p && nq) || ((p || nq) && r.state)
