(** Interpreter: executes an RRAM program on a crossbar of {!Device}s.

    Steps have parallel semantics — every micro-operation in a step reads the
    pre-step device states; this matches the hardware, where all pulses of a
    step are applied in the same clock.  A trace callback can observe every
    executed step (used by the [crossbar_trace] example). *)

val run :
  ?stuck:(Isa.reg * bool) list ->
  ?trace:(int -> Isa.step -> bool array -> unit) ->
  Program.t ->
  bool array ->
  bool array
(** [run program inputs] returns one boolean per program output.  The trace
    callback receives the 1-based step index, the step, and the post-step
    device states.  [stuck] models stuck-at device faults: the listed cells
    ignore every pulse and always read the given value (used by
    {!Faults}). *)

val run_vectors : Program.t -> bool array list -> bool array list
