lib/exp/ablation.mli: Core Format Io
