lib/exp/experiments.ml: Aig_lib Bdd_lib Core Format Io List Logic Result Rram
