lib/exp/ablation.ml: Bdd_lib Core Format Io List Rram
