lib/exp/experiments.mli: Core Format Io
