open Logic

type result = { manager : Bdd.t; roots : Bdd.node list; perm : int array }

let build ?max_nodes ?perm net =
  let num_in = Network.num_inputs net in
  let perm =
    match perm with Some p -> p | None -> Array.init num_in (fun i -> i)
  in
  let man = Bdd.create ?max_nodes num_in in
  let level_of = Array.make num_in 0 in
  Array.iteri (fun lvl input -> level_of.(input) <- lvl) perm;
  let n = Network.num_nodes net in
  let values = Array.make n Bdd.bfalse in
  for id = 0 to n - 1 do
    let fanins = Network.fanins net id in
    let f i = values.(fanins.(i)) in
    let fold_all op init = Array.fold_left (fun acc g -> op acc values.(g)) init fanins in
    values.(id) <-
      (match Network.kind net id with
      | Network.Const b -> if b then Bdd.btrue else Bdd.bfalse
      | Network.Input k -> Bdd.var man level_of.(k)
      | Network.And -> fold_all (Bdd.band man) Bdd.btrue
      | Network.Or -> fold_all (Bdd.bor man) Bdd.bfalse
      | Network.Xor -> fold_all (Bdd.bxor man) Bdd.bfalse
      | Network.Nand -> Bdd.bnot man (fold_all (Bdd.band man) Bdd.btrue)
      | Network.Nor -> Bdd.bnot man (fold_all (Bdd.bor man) Bdd.bfalse)
      | Network.Xnor -> Bdd.bnot man (fold_all (Bdd.bxor man) Bdd.bfalse)
      | Network.Not -> Bdd.bnot man (f 0)
      | Network.Buf -> f 0
      | Network.Maj -> Bdd.maj3 man (f 0) (f 1) (f 2)
      | Network.Mux -> Bdd.ite man (f 0) (f 1) (f 2)
      | Network.Table sop ->
          List.fold_left
            (fun acc cube ->
              let term =
                List.fold_left
                  (fun acc (v, positive) ->
                    let lit = values.(fanins.(v)) in
                    Bdd.band man acc (if positive then lit else Bdd.bnot man lit))
                  Bdd.btrue (Cube.literals cube)
              in
              Bdd.bor man acc term)
            Bdd.bfalse (Sop.cubes sop))
  done;
  let roots = List.map (fun (_, id) -> values.(id)) (Network.outputs net) in
  { manager = man; roots; perm }

let node_count r = Bdd.count_nodes r.manager r.roots
