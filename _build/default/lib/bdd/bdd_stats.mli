(** Size and shape statistics of built BDDs, used by the baseline cost
    reports and by EXPERIMENTS.md tables. *)

type t = {
  nodes : int;  (** shared non-terminal nodes over all roots *)
  per_level : int array;  (** nodes per variable level *)
  widest_level : int;  (** max of [per_level] *)
  paths_bound : float;  (** product-free upper bound on evaluation paths *)
}

val of_result : Bdd_of_network.result -> t
val pp : Format.formatter -> t -> unit
