(** Reduced Ordered Binary Decision Diagrams.

    A from-scratch ROBDD package used as the substrate of the BDD-based
    RRAM-synthesis baseline [11] (Chakraborti et al., IDT 2014).  Nodes are
    hash-consed through a unique table, so two equal functions are
    represented by the same node index — BDD equality is pointer equality.
    Binary operations are memoized in a computed table.

    Variables are identified by their level in a fixed order chosen at
    manager creation (use {!Bdd_order} to pick a good order before
    building). *)

type t
(** Manager: unique table, computed table, variable count. *)

type node = int
(** 0 and 1 are the terminals. *)

exception Limit_exceeded
(** Raised by node creation when the manager's [max_nodes] cap is hit. *)

val create : ?max_nodes:int -> int -> t
(** [create num_vars].  [max_nodes] (default 2_000_000) bounds the unique
    table so that an order-hostile function fails fast instead of
    exhausting memory. *)

val num_vars : t -> int

val bfalse : node
val btrue : node

val var : t -> int -> node
(** The projection of variable [i]. *)

val nvar : t -> int -> node
(** Complemented projection. *)

val ite : t -> node -> node -> node -> node
(** If-then-else — the universal ternary operator. *)

val bnot : t -> node -> node
val band : t -> node -> node -> node
val bor : t -> node -> node -> node
val bxor : t -> node -> node -> node
val bnand : t -> node -> node -> node
val bnor : t -> node -> node -> node
val bxnor : t -> node -> node -> node
val maj3 : t -> node -> node -> node -> node

val level : t -> node -> int
(** Variable level of a non-terminal node. *)

val low : t -> node -> node
val high : t -> node -> node
val is_terminal : node -> bool

val eval : t -> node -> bool array -> bool
(** Evaluate under an assignment indexed by variable level. *)

val count_nodes : t -> node list -> int
(** Distinct non-terminal nodes reachable from the given roots (shared nodes
    counted once) — the "R"-driving size metric of the baseline. *)

val nodes_per_level : t -> node list -> int array
(** Reachable non-terminal node counts, indexed by variable level. *)

val fold_reachable : t -> node list -> init:'a -> (node -> 'a -> 'a) -> 'a
(** Fold over reachable non-terminal nodes in topological order (children
    before parents). *)

val truth_table : t -> node -> Logic.Truth_table.t
(** Tabulate (≤ {!Logic.Truth_table.max_vars} variables). *)

val of_truth_table : t -> Logic.Truth_table.t -> node

val clear_cache : t -> unit
(** Drop the computed table (unique table is kept). *)

val size : t -> int
(** Total allocated nodes in the manager. *)
