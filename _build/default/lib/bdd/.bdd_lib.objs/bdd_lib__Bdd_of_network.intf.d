lib/bdd/bdd_of_network.mli: Bdd Logic
