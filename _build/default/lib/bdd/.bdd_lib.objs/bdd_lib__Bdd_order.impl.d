lib/bdd/bdd_order.ml: Array Bdd Bdd_of_network Hashtbl List Logic Network
