lib/bdd/bdd.ml: Array Hashtbl List Logic
