lib/bdd/bdd.mli: Logic
