lib/bdd/bdd_stats.mli: Bdd_of_network Format
