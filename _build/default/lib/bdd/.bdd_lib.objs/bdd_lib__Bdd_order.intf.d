lib/bdd/bdd_order.mli: Logic
