lib/bdd/bdd_of_network.ml: Array Bdd Cube List Logic Network Sop
