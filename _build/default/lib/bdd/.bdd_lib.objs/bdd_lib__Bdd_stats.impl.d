lib/bdd/bdd_stats.ml: Array Bdd Bdd_of_network Format Hashtbl List
