(** Static variable-ordering heuristics for BDD construction.

    A good variable order is decisive for BDD size, and hence for the cost
    of the BDD-based RRAM baseline.  Each heuristic returns a permutation
    [perm] with [perm.(level) = input index]: the input placed at BDD level
    [level]. *)

type heuristic =
  | Natural  (** declaration order *)
  | Dfs  (** depth-first appearance order from the outputs — the classic
             topology-driven order *)
  | Force of int  (** FORCE (Aloul et al.): iterative barycenter relocation,
                      with the given number of rounds *)
  | Sift of int
      (** rebuild-based sifting: starting from the DFS order, hill-climb by
          moving each variable within a window of the given radius, keeping
          the position that minimizes the shared node count.  Exact-manager
          sifting without rebuilds is future work; this variant is
          quadratic-ish in variable count and is gated to ≤ 24 inputs
          (above that it falls back to DFS). *)
  | Best_of of heuristic list
      (** build with each and keep the smallest result *)

val order : heuristic -> Logic.Network.t -> int array
(** Compute a permutation for the network's inputs.  [Best_of] needs to
    build trial BDDs and therefore runs the full construction internally. *)

val apply : int array -> bool array -> bool array
(** Reindex an assignment on inputs into an assignment on levels. *)
