open Logic

type heuristic = Natural | Dfs | Force of int | Sift of int | Best_of of heuristic list

let natural net = Array.init (Network.num_inputs net) (fun i -> i)

(* Depth-first traversal from the outputs; inputs are ordered by first
   appearance.  Tends to keep related inputs adjacent. *)
let dfs net =
  let n = Network.num_nodes net in
  let seen = Array.make n false in
  let found = ref [] in
  let rec visit id =
    if not seen.(id) then begin
      seen.(id) <- true;
      (match Network.kind net id with
      | Network.Input k -> found := k :: !found
      | _ -> ());
      Array.iter visit (Network.fanins net id)
    end
  in
  List.iter (fun (_, id) -> visit id) (Network.outputs net);
  let ordered = List.rev !found in
  let present = Hashtbl.create 17 in
  List.iter (fun k -> Hashtbl.replace present k ()) ordered;
  let missing =
    List.init (Network.num_inputs net) (fun k -> k)
    |> List.filter (fun k -> not (Hashtbl.mem present k))
  in
  Array.of_list (ordered @ missing)

(* FORCE: place each input at the barycenter of the gates using it, iterate.
   Gate positions are the mean of their inputs' positions. *)
let force rounds net =
  let num_in = Network.num_inputs net in
  if num_in = 0 then [||]
  else begin
    let n = Network.num_nodes net in
    (* support.(id) = sorted list of input indices in the cone of id *)
    let support = Array.make n [] in
    for id = 0 to n - 1 do
      support.(id) <-
        (match Network.kind net id with
        | Network.Input k -> [ k ]
        | Network.Const _ -> []
        | _ ->
            Array.fold_left
              (fun acc f -> List.sort_uniq compare (support.(f) @ acc))
              [] (Network.fanins net id))
    done;
    (* Hyperedges: the supports of all gates with 2..8 distinct inputs. *)
    let edges =
      let acc = ref [] in
      for id = 0 to n - 1 do
        match Network.kind net id with
        | Network.Input _ | Network.Const _ -> ()
        | _ ->
            let s = support.(id) in
            let len = List.length s in
            if len >= 2 && len <= 8 then acc := s :: !acc
      done;
      !acc
    in
    let pos = Array.init num_in float_of_int in
    for _ = 1 to rounds do
      let sum = Array.make num_in 0.0 and cnt = Array.make num_in 0 in
      List.iter
        (fun edge ->
          let center =
            List.fold_left (fun acc k -> acc +. pos.(k)) 0.0 edge
            /. float_of_int (List.length edge)
          in
          List.iter
            (fun k ->
              sum.(k) <- sum.(k) +. center;
              cnt.(k) <- cnt.(k) + 1)
            edge)
        edges;
      for k = 0 to num_in - 1 do
        if cnt.(k) > 0 then pos.(k) <- sum.(k) /. float_of_int cnt.(k)
      done;
      (* Re-rank to integer positions. *)
      let ranked = Array.init num_in (fun k -> k) in
      Array.sort (fun a b -> compare pos.(a) pos.(b)) ranked;
      Array.iteri (fun rank k -> pos.(k) <- float_of_int rank) ranked
    done;
    let perm = Array.init num_in (fun k -> k) in
    Array.sort (fun a b -> compare pos.(a) pos.(b)) perm;
    perm
  end

(* Build a trial BDD to score a permutation (used by Best_of and Sift);
   order-hostile candidates score [max_int] instead of diverging. *)
let build_size net perm =
  match Bdd_of_network.build ~max_nodes:300_000 ~perm net with
  | r -> Bdd_of_network.node_count r
  | exception Bdd.Limit_exceeded -> max_int

(* Move element at position [i] to position [j] in a permutation. *)
let moved perm i j =
  let v = perm.(i) in
  let without = Array.of_list (List.filteri (fun k _ -> k <> i) (Array.to_list perm)) in
  let before = Array.sub without 0 j in
  let after = Array.sub without j (Array.length without - j) in
  Array.concat [ before; [| v |]; after ]

let rec order heuristic net =
  match heuristic with
  | Natural -> natural net
  | Dfs -> dfs net
  | Force rounds -> force rounds net
  | Sift window ->
      let start = dfs net in
      let n = Array.length start in
      if n > 24 || n < 3 then start
      else begin
        let best = ref start in
        let best_size = ref (build_size net start) in
        (* one pass over variables, each tried within ±window positions *)
        for i = 0 to n - 1 do
          for j = max 0 (i - window) to min (n - 1) (i + window) do
            if j <> i then begin
              let candidate = moved !best i j in
              let size = build_size net candidate in
              if size < !best_size then begin
                best := candidate;
                best_size := size
              end
            end
          done
        done;
        !best
      end
  | Best_of hs -> (
      let candidates = List.map (fun h -> order h net) hs in
      match candidates with
      | [] -> natural net
      | first :: _ ->
          if Network.num_inputs net = 0 then first
          else
            List.fold_left
              (fun (best, best_size) perm ->
                let s = build_size net perm in
                if s < best_size then (perm, s) else (best, best_size))
              (first, build_size net first)
              candidates
            |> fst)

let apply perm input_assignment =
  Array.map (fun input -> input_assignment.(input)) perm
