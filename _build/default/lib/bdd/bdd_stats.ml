type t = {
  nodes : int;
  per_level : int array;
  widest_level : int;
  paths_bound : float;
}

let of_result (r : Bdd_of_network.result) =
  let per_level = Bdd.nodes_per_level r.manager r.roots in
  let nodes = Array.fold_left ( + ) 0 per_level in
  let widest_level = Array.fold_left max 0 per_level in
  (* Count root-to-terminal paths (capped) as a complexity indicator. *)
  let memo = Hashtbl.create 97 in
  let rec paths n =
    if Bdd.is_terminal n then 1.0
    else
      match Hashtbl.find_opt memo n with
      | Some p -> p
      | None ->
          let p =
            min 1e18 (paths (Bdd.low r.manager n) +. paths (Bdd.high r.manager n))
          in
          Hashtbl.replace memo n p;
          p
  in
  let paths_bound = List.fold_left (fun acc root -> acc +. paths root) 0.0 r.roots in
  { nodes; per_level; widest_level; paths_bound }

let pp ppf t =
  Format.fprintf ppf "nodes=%d widest=%d paths<=%.3g" t.nodes t.widest_level
    t.paths_bound
