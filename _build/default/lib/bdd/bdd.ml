type node = int

exception Limit_exceeded

type t = {
  nvars : int;
  max_nodes : int;
  mutable var_of : int array; (* level of node *)
  mutable low_of : node array;
  mutable high_of : node array;
  mutable n : int;
  unique : (int * node * node, node) Hashtbl.t;
  computed : (int * node * node * node, node) Hashtbl.t;
}

let bfalse = 0
let btrue = 1

let create ?(max_nodes = 2_000_000) nvars =
  let cap = 1024 in
  let t =
    {
      nvars;
      max_nodes;
      var_of = Array.make cap max_int;
      low_of = Array.make cap 0;
      high_of = Array.make cap 0;
      n = 2;
      unique = Hashtbl.create 4096;
      computed = Hashtbl.create 4096;
    }
  in
  (* Terminals sit below every variable. *)
  t.var_of.(bfalse) <- max_int;
  t.var_of.(btrue) <- max_int;
  t

let num_vars t = t.nvars

let grow t =
  if t.n >= Array.length t.var_of then begin
    let cap = 2 * Array.length t.var_of in
    let extend arr fill =
      let bigger = Array.make cap fill in
      Array.blit arr 0 bigger 0 t.n;
      bigger
    in
    t.var_of <- extend t.var_of max_int;
    t.low_of <- extend t.low_of 0;
    t.high_of <- extend t.high_of 0
  end

(* Hash-consed node creation with the ROBDD reduction rule. *)
let mk t v low high =
  if low = high then low
  else
    match Hashtbl.find_opt t.unique (v, low, high) with
    | Some n -> n
    | None ->
        if t.n >= t.max_nodes then raise Limit_exceeded;
        grow t;
        let id = t.n in
        t.var_of.(id) <- v;
        t.low_of.(id) <- low;
        t.high_of.(id) <- high;
        t.n <- t.n + 1;
        Hashtbl.replace t.unique (v, low, high) id;
        id

let var t i =
  if i < 0 || i >= t.nvars then invalid_arg "Bdd.var";
  mk t i bfalse btrue

let nvar t i =
  if i < 0 || i >= t.nvars then invalid_arg "Bdd.nvar";
  mk t i btrue bfalse

let level t n = t.var_of.(n)
let low t n = t.low_of.(n)
let high t n = t.high_of.(n)
let is_terminal n = n < 2

(* Opcode 0 is reserved for ite in the computed table. *)
let rec ite t f g h =
  if f = btrue then g
  else if f = bfalse then h
  else if g = h then g
  else if g = btrue && h = bfalse then f
  else
    let key = (0, f, g, h) in
    match Hashtbl.find_opt t.computed key with
    | Some r -> r
    | None ->
        let v = min t.var_of.(f) (min t.var_of.(g) t.var_of.(h)) in
        let cof n side =
          if t.var_of.(n) = v then if side then t.high_of.(n) else t.low_of.(n)
          else n
        in
        let r_high = ite t (cof f true) (cof g true) (cof h true) in
        let r_low = ite t (cof f false) (cof g false) (cof h false) in
        let r = mk t v r_low r_high in
        Hashtbl.replace t.computed key r;
        r

let bnot t f = ite t f bfalse btrue
let band t f g = ite t f g bfalse
let bor t f g = ite t f btrue g
let bxor t f g = ite t f (bnot t g) g
let bnand t f g = bnot t (band t f g)
let bnor t f g = bnot t (bor t f g)
let bxnor t f g = bnot t (bxor t f g)
let maj3 t f g h = bor t (band t f g) (bor t (band t f h) (band t g h))

let rec eval t n a =
  if n = bfalse then false
  else if n = btrue then true
  else if a.(t.var_of.(n)) then eval t t.high_of.(n) a
  else eval t t.low_of.(n) a

let fold_reachable t roots ~init f =
  let visited = Hashtbl.create 97 in
  let acc = ref init in
  let rec visit n =
    if (not (is_terminal n)) && not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      visit t.low_of.(n);
      visit t.high_of.(n);
      acc := f n !acc
    end
  in
  List.iter visit roots;
  !acc

let count_nodes t roots = fold_reachable t roots ~init:0 (fun _ acc -> acc + 1)

let nodes_per_level t roots =
  let counts = Array.make t.nvars 0 in
  fold_reachable t roots ~init:() (fun n () ->
      counts.(t.var_of.(n)) <- counts.(t.var_of.(n)) + 1)
  |> fun () -> counts

let truth_table t root =
  let n = t.nvars in
  if n > Logic.Truth_table.max_vars then invalid_arg "Bdd.truth_table";
  Logic.Truth_table.of_function n (fun a -> eval t root a)

let of_truth_table t tt =
  let n = Logic.Truth_table.num_vars tt in
  if n > t.nvars then invalid_arg "Bdd.of_truth_table";
  (* Shannon expansion from the top variable down, memoized on the table
     bits. *)
  let memo = Hashtbl.create 97 in
  let rec build tt v =
    if v = n then if Logic.Truth_table.get tt 0 then btrue else bfalse
    else
      let key = (Logic.Truth_table.to_bits tt, v) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          let lo = build (Logic.Truth_table.cofactor tt v false) (v + 1) in
          let hi = build (Logic.Truth_table.cofactor tt v true) (v + 1) in
          let r = mk t v lo hi in
          Hashtbl.replace memo key r;
          r
  in
  build tt 0

let clear_cache t = Hashtbl.reset t.computed
let size t = t.n
