(** Building BDDs from a {!Logic.Network.t}.

    The permutation (level → input index) fixes the variable order; use
    {!Bdd_order} to compute one.  Evaluation convention: an assignment on the
    network's inputs must be translated with {!Bdd_order.apply} before
    {!Bdd.eval}. *)

type result = {
  manager : Bdd.t;
  roots : Bdd.node list;  (** one per network output, declaration order *)
  perm : int array;  (** perm.(level) = input index *)
}

val build : ?max_nodes:int -> ?perm:int array -> Logic.Network.t -> result
(** Defaults to the natural order; [max_nodes] is forwarded to
    {!Bdd.create} (construction raises {!Bdd.Limit_exceeded} beyond it). *)

val node_count : result -> int
(** Shared node count over all roots. *)
