let balance aig =
  let fresh = Aig.create () in
  let pis = Array.init (Aig.num_pis aig) (fun _ -> Aig.add_pi fresh) in
  let memo = Hashtbl.create 997 in
  let levels = Hashtbl.create 997 in
  let level_of s =
    match Hashtbl.find_opt levels (Aig.node_of s) with Some l -> l | None -> 0
  in
  (* Collect the leaves of the maximal AND tree rooted at node [n],
     descending only through positive AND edges. *)
  let rec leaves_of n acc =
    let f0, f1 = Aig.fanins aig n in
    let descend s acc =
      if (not (Aig.is_compl s)) && Aig.kind aig (Aig.node_of s) = Aig.And then
        leaves_of (Aig.node_of s) acc
      else s :: acc
    in
    descend f0 (descend f1 acc)
  in
  let rec rebuild_signal s =
    let n = Aig.node_of s in
    let positive =
      match Aig.kind aig n with
      | Aig.Const -> Aig.const0
      | Aig.Pi k -> pis.(k)
      | Aig.And -> (
          match Hashtbl.find_opt memo n with
          | Some r -> r
          | None ->
              let leaves = leaves_of n [] in
              let mapped = List.map rebuild_signal leaves in
              (* Huffman-style combine: always join the two shallowest. *)
              let sorted =
                List.sort (fun a b -> compare (level_of a) (level_of b)) mapped
              in
              let rec combine = function
                | [] -> Aig.const1
                | [ x ] -> x
                | x :: y :: rest ->
                    let z = Aig.and_ fresh x y in
                    if Aig.kind fresh (Aig.node_of z) = Aig.And then
                      Hashtbl.replace levels (Aig.node_of z)
                        (1 + max (level_of x) (level_of y));
                    (* keep the list sorted by level *)
                    let rec insert v = function
                      | [] -> [ v ]
                      | w :: ws when level_of w < level_of v -> w :: insert v ws
                      | ws -> v :: ws
                    in
                    combine (insert z rest)
              in
              let r = combine sorted in
              Hashtbl.replace memo n r;
              r)
    in
    if Aig.is_compl s then Aig.not_ positive else positive
  in
  Array.iter (fun s -> ignore (Aig.add_po fresh (rebuild_signal s))) (Aig.pos aig);
  fresh
