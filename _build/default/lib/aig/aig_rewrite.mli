(** Light local AIG rewriting: a rebuild pass applying two-level rules
    (contradiction, absorption, idempotence through one AND level) on top of
    structural hashing.  Sound and size-non-increasing. *)

val rewrite : Aig.t -> Aig.t
