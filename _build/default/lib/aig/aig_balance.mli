(** AND-tree balancing.

    Rebuilds the AIG with every maximal conjunction re-associated as a
    minimum-depth tree (lowest-level operands combined first, Huffman
    style).  Reduces depth, which directly reduces the step count of the
    level-parallel variant of the AIG→RRAM baseline. *)

val balance : Aig.t -> Aig.t
