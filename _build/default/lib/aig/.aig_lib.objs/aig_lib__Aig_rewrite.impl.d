lib/aig/aig_rewrite.ml: Aig Array Hashtbl List
