lib/aig/aig_balance.ml: Aig Array Hashtbl List
