lib/aig/aig_balance.mli: Aig
