lib/aig/aig_of_network.mli: Aig Logic
