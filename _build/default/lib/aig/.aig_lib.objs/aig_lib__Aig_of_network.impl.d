lib/aig/aig_of_network.ml: Aig Array Cube List Logic Network Sop
