lib/aig/aig.mli: Format Logic
