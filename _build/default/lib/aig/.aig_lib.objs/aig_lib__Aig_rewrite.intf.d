lib/aig/aig_rewrite.mli: Aig
