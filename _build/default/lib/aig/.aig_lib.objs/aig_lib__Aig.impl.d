lib/aig/aig.ml: Array Bitvec Format Hashtbl List Logic Truth_table
