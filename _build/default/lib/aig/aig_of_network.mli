(** Conversion of a {!Logic.Network.t} into an AIG (balanced n-ary folds,
    SOP tables expanded as OR-of-ANDs). *)

val convert : Logic.Network.t -> Aig.t
