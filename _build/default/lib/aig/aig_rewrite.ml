(* Two-level simplification at construction time:
     (x·y)·x   = x·y          (absorption)
     (x·y)·¬x  = 0            (contradiction)
     (x·y)·(x·z) with y = ¬z  = 0
   plus everything [Aig.and_] already handles at one level. *)
let smart_and aig a b =
  let gate_fanins s =
    if (not (Aig.is_compl s)) && Aig.kind aig (Aig.node_of s) = Aig.And then
      Some (Aig.fanins aig (Aig.node_of s))
    else None
  in
  let contradiction =
    let children s =
      match gate_fanins s with Some (x, y) -> [ x; y ] | None -> []
    in
    let ca = children a and cb = children b in
    List.exists (fun x -> x = Aig.not_ b) ca
    || List.exists (fun x -> x = Aig.not_ a) cb
    || List.exists (fun x -> List.mem (Aig.not_ x) cb) ca
  in
  if contradiction then Aig.const0
  else
    let absorbed =
      match gate_fanins a with
      | Some (x, y) when x = b || y = b -> Some a
      | _ -> (
          match gate_fanins b with
          | Some (x, y) when x = a || y = a -> Some b
          | _ -> None)
    in
    match absorbed with Some s -> s | None -> Aig.and_ aig a b

let rewrite aig =
  let fresh = Aig.create () in
  let pis = Array.init (Aig.num_pis aig) (fun _ -> Aig.add_pi fresh) in
  let memo = Hashtbl.create 997 in
  let rec rebuild s =
    let n = Aig.node_of s in
    let positive =
      match Aig.kind aig n with
      | Aig.Const -> Aig.const0
      | Aig.Pi k -> pis.(k)
      | Aig.And -> (
          match Hashtbl.find_opt memo n with
          | Some r -> r
          | None ->
              let f0, f1 = Aig.fanins aig n in
              let r = smart_and fresh (rebuild f0) (rebuild f1) in
              Hashtbl.replace memo n r;
              r)
    in
    if Aig.is_compl s then Aig.not_ positive else positive
  in
  Array.iter (fun s -> ignore (Aig.add_po fresh (rebuild s))) (Aig.pos aig);
  fresh
