open Logic

let rec balanced_fold f = function
  | [] -> invalid_arg "Aig_of_network: empty operand list"
  | [ x ] -> x
  | xs ->
      let rec split acc k = function
        | rest when k = 0 -> (List.rev acc, rest)
        | x :: rest -> split (x :: acc) (k - 1) rest
        | [] -> (List.rev acc, [])
      in
      let half = List.length xs / 2 in
      let left, right = split [] half xs in
      f (balanced_fold f left) (balanced_fold f right)

let convert net =
  let aig = Aig.create () in
  let pis = Array.init (Network.num_inputs net) (fun _ -> Aig.add_pi aig) in
  let n = Network.num_nodes net in
  let signals = Array.make n Aig.const0 in
  for id = 0 to n - 1 do
    let fanins = Network.fanins net id in
    let f i = signals.(fanins.(i)) in
    let all () = Array.to_list (Array.map (fun g -> signals.(g)) fanins) in
    signals.(id) <-
      (match Network.kind net id with
      | Network.Const b -> if b then Aig.const1 else Aig.const0
      | Network.Input k -> pis.(k)
      | Network.And -> balanced_fold (Aig.and_ aig) (all ())
      | Network.Or -> balanced_fold (Aig.or_ aig) (all ())
      | Network.Xor -> balanced_fold (Aig.xor_ aig) (all ())
      | Network.Nand -> Aig.not_ (balanced_fold (Aig.and_ aig) (all ()))
      | Network.Nor -> Aig.not_ (balanced_fold (Aig.or_ aig) (all ()))
      | Network.Xnor -> Aig.not_ (balanced_fold (Aig.xor_ aig) (all ()))
      | Network.Not -> Aig.not_ (f 0)
      | Network.Buf -> f 0
      | Network.Maj -> Aig.maj3 aig (f 0) (f 1) (f 2)
      | Network.Mux -> Aig.mux aig (f 0) (f 1) (f 2)
      | Network.Table sop ->
          let cube_signal cube =
            match Cube.literals cube with
            | [] -> Aig.const1
            | lits ->
                balanced_fold (Aig.and_ aig)
                  (List.map
                     (fun (v, positive) ->
                       let s = signals.(fanins.(v)) in
                       if positive then s else Aig.not_ s)
                     lits)
          in
          (match Sop.cubes sop with
          | [] -> Aig.const0
          | cubes -> balanced_fold (Aig.or_ aig) (List.map cube_signal cubes)))
  done;
  List.iter (fun (_, id) -> ignore (Aig.add_po aig signals.(id))) (Network.outputs net);
  aig
