(** BLIF (Berkeley Logic Interchange Format) reader and writer.

    Supports the combinational subset used by the LGsynth91 distribution:
    [.model], [.inputs], [.outputs], [.names] with SOP covers (both on-set
    and off-set covers, i.e. output column [1] or [0]), line continuations
    with [\ ], comments with [#], and [.end].  Latches are rejected with a
    clear error — the paper evaluates combinational profiles. *)

exception Parse_error of int * string
(** line number, message *)

val parse_string : string -> Logic.Network.t
val parse_file : string -> Logic.Network.t

val parse_sequential_string : string -> Logic.Seq.t
(** Accepts [.latch input output \[type ctrl\] \[init\]] lines (init 0/1;
    2/3 default to 0) and returns the registers explicitly.  The plain
    [parse_string] keeps rejecting latches so purely combinational flows
    fail loudly on sequential files. *)

val parse_sequential_file : string -> Logic.Seq.t

val write_string : ?model_name:string -> Logic.Network.t -> string
val write_file : ?model_name:string -> string -> Logic.Network.t -> unit
