open Logic

type pair = { r : int; s : int }

type table2_ref = {
  area_imp : pair;
  depth_imp : pair;
  rram_imp : pair;
  rram_maj : pair;
  step_imp : pair;
  step_maj : pair;
  bdd : pair;
}

type table3_ref = { aig_steps : int; mig_imp : pair; mig_maj : pair }
type reference = Table2_ref of table2_ref | Table3_ref of table3_ref

type entry = {
  name : string;
  inputs : int;
  exact : bool;
  build : unit -> Network.t;
  reference : reference;
}

let p r s = { r; s }

(* Table II (all 12 columns) + Table III left (BDD columns), transcribed from
   the paper.  Column order: Area-IMP, Depth-IMP, RRAM-costs-IMP,
   RRAM-costs-MAJ, Step-IMP, Step-MAJ, then BDD [11]. *)
let t2 a1 a2 d1 d2 r1 r2 m1 m2 s1 s2 j1 j2 b1 b2 =
  Table2_ref
    {
      area_imp = p a1 a2;
      depth_imp = p d1 d2;
      rram_imp = p r1 r2;
      rram_maj = p m1 m2;
      step_imp = p s1 s2;
      step_maj = p j1 j2;
      bdd = p b1 b2;
    }

let t3 aig ir is mr ms =
  Table3_ref { aig_steps = aig; mig_imp = p ir is; mig_maj = p mr ms }

let entry name inputs exact build reference = { name; inputs; exact; build; reference }

(* The MCNC functions were distributed as two-level PLAs; re-expressing a
   (small) function through its minimized SOP reproduces that shallow-wide
   structural profile exactly. *)
let two_level build () =
  let net = build () in
  if Network.num_inputs net > 12 then net
  else
    let sops =
      Array.map
        (fun tt -> Espresso.minimize (Sop.of_truth_table tt))
        (Network.truth_tables net)
    in
    Pla.of_sops ~input_names:(Network.input_names net)
      ~output_names:(Array.of_list (List.map fst (Network.outputs net)))
      sops

(* Deterministic substitutes: sizes are scaled to roughly half of the
   paper's structural magnitudes so that effort-40 optimization and the BDD
   baseline over the whole suite stay within the paper's interactive-runtime
   regime (DESIGN.md §2 and EXPERIMENTS.md discuss the scaling). *)
let table2 =
  [
    entry "5xp1" 7 true (two_level (fun () -> Funcgen.square 7 10))
      (t2 170 110 213 110 199 99 149 36 264 77 182 28 84 73);
    entry "alu4" 14 true (fun () -> Funcgen.alu4 ())
      (t2 1542 286 1858 242 2160 176 1370 72 2461 165 1717 56 642 334);
    entry "apex1" 45 false
      (fun () -> Gen.layered_network ~name:"apex1" ~inputs:45 ~width:150 ~depth:8 ~outputs:45 ())
      (t2 2647 241 3399 187 3676 165 2343 56 4335 121 2972 44 1626 705);
    entry "apex2" 39 false
      (fun () -> Gen.layered_network ~name:"apex2" ~inputs:39 ~width:40 ~depth:10 ~outputs:3 ())
      (t2 355 275 583 231 531 143 358 56 653 132 435 47 122 237);
    entry "apex4" 9 false
      (fun () -> Gen.layered_network ~name:"apex4" ~inputs:9 ~width:200 ~depth:7 ~outputs:19 ())
      (t2 3854 198 4122 176 4728 143 2820 64 5340 132 3602 48 2073 447);
    entry "apex5" 117 false
      (fun () -> Gen.layered_network ~name:"apex5" ~inputs:117 ~width:90 ~depth:9 ~outputs:88 ())
      (t2 1240 275 1757 143 1482 141 1053 47 1975 98 1286 35 806 888);
    entry "apex6" 135 false
      (fun () -> Gen.layered_network ~name:"apex6" ~inputs:135 ~width:100 ~depth:7 ~outputs:99 ())
      (t2 1097 198 1277 143 1652 121 1018 44 1742 99 1191 36 770 1169);
    entry "apex7" 49 false
      (fun () -> Gen.layered_network ~name:"apex7" ~inputs:49 ~width:32 ~depth:7 ~outputs:37 ())
      (t2 300 176 389 143 408 132 277 48 526 121 348 44 290 437);
    entry "b9" 41 true (fun () -> Funcgen.ripple_adder 20)
      (t2 252 99 252 88 252 87 168 32 252 66 168 28 125 298);
    entry "clip" 9 true (fun () -> Funcgen.clip ())
      (t2 256 132 276 121 312 110 217 40 380 99 275 36 120 89);
    entry "cm150a" 21 true (fun () -> Funcgen.mux_tree 4)
      (t2 132 99 132 99 147 77 95 32 132 88 90 32 56 127);
    entry "cm162a" 14 true (fun () -> Funcgen.comparator 7)
      (t2 90 99 90 77 90 86 60 30 90 66 65 24 46 102);
    entry "cm163a" 16 true (fun () -> Funcgen.comparator 8)
      (t2 102 77 102 77 102 76 68 27 102 66 68 24 42 116);
    entry "cordic" 23 true (fun () -> Funcgen.cordic_stage 11 2)
      (t2 199 164 242 132 189 121 134 48 229 99 162 39 32 149);
    entry "misex1" 8 false
      (fun () -> Gen.random_sop_network ~name:"misex1" ~inputs:8 ~outputs:7 ~cubes:12 ~literals:3 ())
      (t2 101 77 128 66 111 66 76 24 130 55 94 20 83 69);
    entry "misex3" 14 false
      (fun () -> Gen.layered_network ~name:"misex3" ~inputs:14 ~width:120 ~depth:8 ~outputs:14 ())
      (t2 1547 253 2118 231 2207 165 1444 67 2621 143 1762 52 444 185);
    entry "parity" 16 true (fun () -> Funcgen.parity 16)
      (t2 224 176 224 176 216 132 152 53 216 154 152 48 23 113);
    entry "seq" 41 false
      (fun () -> Gen.layered_network ~name:"seq" ~inputs:41 ~width:140 ~depth:8 ~outputs:35 ())
      (t2 2032 308 2566 242 3189 153 1970 64 3551 132 2498 60 1566 692);
    entry "t481" 16 true (fun () -> Funcgen.t481 ())
      (t2 102 209 168 132 148 142 90 52 188 110 123 40 26 107);
    entry "table5" 17 false
      (fun () -> Gen.layered_network ~name:"table5" ~inputs:17 ~width:120 ~depth:8 ~outputs:15 ())
      (t2 1598 286 2719 231 2630 154 1723 64 3393 142 2252 52 580 168);
    entry "too_large" 38 false
      (fun () -> Gen.layered_network ~name:"too_large" ~inputs:38 ~width:35 ~depth:10 ~outputs:3 ())
      (t2 315 341 512 264 510 164 322 64 587 121 392 48 282 232);
    entry "x1" 51 false
      (fun () -> Gen.layered_network ~name:"x1" ~inputs:51 ~width:43 ~depth:7 ~outputs:35 ())
      (t2 442 164 736 110 569 99 435 36 711 77 509 28 230 398);
    entry "x2" 10 false
      (fun () -> Gen.random_sop_network ~name:"x2" ~inputs:10 ~outputs:7 ~cubes:10 ~literals:4 ())
      (t2 66 88 92 77 66 76 46 26 94 66 68 24 60 80);
    entry "x3" 135 false
      (fun () -> Gen.layered_network ~name:"x3" ~inputs:135 ~width:97 ~depth:7 ~outputs:99 ())
      (t2 1075 198 1363 143 1729 99 1008 44 1787 99 1201 36 770 1169);
    entry "x4" 94 false
      (fun () -> Gen.layered_network ~name:"x4" ~inputs:94 ~width:50 ~depth:7 ~outputs:71 ())
      (t2 570 121 591 88 599 77 391 28 694 66 563 24 401 642);
  ]

let slice build k () =
  let net = build () in
  Network.extract_outputs net [ k ]

let sao2 () =
  Gen.random_sop_network ~name:"sao2" ~inputs:10 ~outputs:4 ~cubes:20 ~literals:5 ()

let table3_aig =
  [
    entry "9sym_d" 9 true (fun () -> Funcgen.sym_range 9 3 6) (t3 1418 923 175 398 60);
    entry "con1f1" 7 false
      (fun () -> Gen.random_sop_network ~name:"con1f1" ~inputs:7 ~outputs:1 ~cubes:4 ~literals:3 ())
      (t3 18 70 75 28 26);
    entry "con2f2" 7 false
      (fun () -> Gen.random_sop_network ~name:"con2f2" ~inputs:7 ~outputs:1 ~cubes:4 ~literals:3 ())
      (t3 19 60 76 24 24);
    entry "exam1_d" 3 false
      (fun () -> Gen.random_sop_network ~name:"exam1_d" ~inputs:3 ~outputs:1 ~cubes:3 ~literals:2 ())
      (t3 12 43 44 19 16);
    entry "exam3_d" 4 false
      (fun () -> Gen.random_sop_network ~name:"exam3_d" ~inputs:4 ~outputs:1 ~cubes:4 ~literals:3 ())
      (t3 12 50 55 20 23);
    entry "max46_d" 9 false
      (fun () -> Gen.random_sop_network ~name:"max46_d" ~inputs:9 ~outputs:1 ~cubes:30 ~literals:6 ())
      (t3 427 408 131 193 48);
    entry "newill_d" 8 false
      (fun () -> Gen.random_sop_network ~name:"newill_d" ~inputs:8 ~outputs:1 ~cubes:8 ~literals:4 ())
      (t3 50 129 109 57 40);
    entry "newtag_d" 8 false
      (fun () -> Gen.random_sop_network ~name:"newtag_d" ~inputs:8 ~outputs:1 ~cubes:5 ~literals:3 ())
      (t3 21 90 96 36 33);
    entry "rd53f1" 5 true (slice (fun () -> Funcgen.rd 5 3) 0) (t3 27 60 64 24 25);
    entry "rd53f2" 5 true (slice (fun () -> Funcgen.rd 5 3) 1) (t3 57 77 77 35 28);
    entry "rd53f3" 5 true (slice (fun () -> Funcgen.rd 5 3) 2) (t3 32 86 66 38 24);
    entry "rd73f1" 7 true (slice (fun () -> Funcgen.rd 7 3) 0) (t3 238 291 121 140 44);
    entry "rd73f2" 7 true (slice (fun () -> Funcgen.rd 7 3) 1) (t3 46 129 88 57 32);
    entry "rd73f3" 7 true (slice (fun () -> Funcgen.rd 7 3) 2) (t3 104 193 107 84 39);
    entry "rd84f1" 8 true (slice (fun () -> Funcgen.rd 8 4) 0) (t3 351 430 153 187 52);
    entry "rd84f2" 8 true (slice (fun () -> Funcgen.rd 8 4) 1) (t3 47 172 88 76 31);
    entry "rd84f3" 8 true (slice (fun () -> Funcgen.rd 8 4) 2) (t3 23 90 50 36 15);
    entry "rd84f4" 8 true (slice (fun () -> Funcgen.rd 8 4) 3) (t3 345 473 141 214 47);
    entry "sao2f1" 10 false (slice sao2 0) (t3 102 110 108 72 35);
    entry "sao2f2" 10 false (slice sao2 1) (t3 112 234 119 98 42);
    entry "sao2f3" 10 false (slice sao2 2) (t3 380 325 143 143 55);
    entry "sao2f4" 10 false (slice sao2 3) (t3 252 326 143 163 59);
    entry "sym10_d" 10 true (fun () -> Funcgen.sym_range 10 3 6) (t3 1172 1475 187 643 72);
    entry "t481_d" 16 true (fun () -> Funcgen.t481 ()) (t3 1564 1285 187 567 72);
    entry "xor5_d" 5 true (fun () -> Funcgen.parity 5) (t3 32 86 66 38 24);
  ]

let all = table2 @ table3_aig
let find name = List.find_opt (fun e -> e.name = name) all
