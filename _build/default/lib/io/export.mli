(** Graph exporters: Graphviz DOT for inspection and gate-level structural
    Verilog for downstream consumption.

    The Verilog writer emits each majority node as an [assign] with the
    standard AND/OR expansion (synthesizable by any tool); complement
    attributes become [~] on operand references, so the file mirrors the MIG
    exactly (gate count = MIG size, inverters free). *)

val mig_to_dot : Core.Mig.t -> string
(** DOT digraph: boxes for PIs, circles for majority gates, dashed edges for
    complemented inputs. *)

val mig_to_verilog : ?module_name:string -> Core.Mig.t -> string

val network_to_dot : Logic.Network.t -> string

val write_file : string -> string -> unit
(** [write_file path contents]. *)
