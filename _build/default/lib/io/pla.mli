(** PLA (espresso) format reader and writer.

    Supports [.i], [.o], [.p], [.ilb], [.ob], [.type fd|fr|f] and cube lines
    [<input-plane> <output-plane>] with ['0' '1' '-'/'~'] input literals and
    ['1' '0' '-'] output literals.  With the default [fd] semantics a ['1']
    adds the cube to the output's on-set and ['0']/['-'] contribute nothing;
    with [fr] semantics ['0'] entries are checked for consistency against
    the on-set. *)

exception Parse_error of int * string

val parse_string : string -> Logic.Network.t
val parse_file : string -> Logic.Network.t

val write_string : Logic.Network.t -> string
(** Tabulates the network (inputs ≤ {!Logic.Truth_table.max_vars}) into a
    minimized two-level cover. *)

val write_file : string -> Logic.Network.t -> unit

val of_sops : ?input_names:string array -> ?output_names:string array -> Logic.Sop.t array -> Logic.Network.t
(** Wrap single-output covers sharing one input space into a network. *)
