open Logic

let binary_kinds =
  [| Network.And; Network.Or; Network.Xor; Network.Nand; Network.Nor |]

(* Both generators use *windowed* connectivity: a gate draws its operands
   from a small neighbourhood of the previous layer (or of recently created
   nodes) around its own position.  Real netlists have exactly this kind of
   locality — bounded-support cones — and it is what keeps their BDDs
   polynomial; fully random connectivity would make the BDD baseline
   overflow on circuits whose originals are BDD-friendly. *)

let window_pick rng arr center radius =
  let n = Array.length arr in
  let lo = max 0 (center - radius) in
  let hi = min (n - 1) (center + radius) in
  arr.(lo + Prng.int rng (hi - lo + 1))

let random_network ~name ~inputs ~gates ~outputs () =
  let rng = Prng.of_string name in
  let net = Network.create () in
  let pool = Array.make (inputs + gates) 0 in
  for i = 0 to inputs - 1 do
    pool.(i) <- Network.add_input net (Printf.sprintf "x%d" i)
  done;
  let count = ref inputs in
  for g = 0 to gates - 1 do
    (* anchor the gate over a position that sweeps the pool, so cones stay
       narrow but the whole input space gets covered *)
    let center =
      if !count <= 4 then 0
      else (g * (!count - 1) / max 1 gates) + Prng.int rng 4
    in
    let center = min center (!count - 1) in
    let existing = Array.sub pool 0 !count in
    let pick () = window_pick rng existing center 4 in
    let choice = Prng.int rng 10 in
    let id =
      if choice < 7 then
        Network.gate net (Prng.pick rng binary_kinds) [| pick (); pick () |]
      else if choice < 8 then
        Network.gate net Network.Maj [| pick (); pick (); pick () |]
      else if choice < 9 then
        Network.gate net Network.Mux [| pick (); pick (); pick () |]
      else Network.not_ net (pick ())
    in
    pool.(!count) <- id;
    incr count
  done;
  let last = Array.sub pool (max 0 (!count - max outputs (gates / 3))) (min !count (max outputs (gates / 3))) in
  for o = 0 to outputs - 1 do
    let center = o * (Array.length last - 1) / max 1 outputs in
    Network.add_output net (Printf.sprintf "y%d" o) (window_pick rng last center 3)
  done;
  net

let layered_network ~name ~inputs ~width ~depth ~outputs () =
  let rng = Prng.of_string name in
  let net = Network.create () in
  let layer0 =
    Array.init inputs (fun i -> Network.add_input net (Printf.sprintf "x%d" i))
  in
  let prev = ref layer0 in
  for _ = 1 to depth do
    let sources = !prev in
    let n_src = Array.length sources in
    let layer =
      Array.init width (fun i ->
          let center = i * (n_src - 1) / max 1 width in
          let pick () = window_pick rng sources center 3 in
          if Prng.int rng 8 < 6 then
            Network.gate net (Prng.pick rng binary_kinds) [| pick (); pick () |]
          else Network.gate net Network.Maj [| pick (); pick (); pick () |])
    in
    prev := layer
  done;
  let last = !prev in
  for o = 0 to outputs - 1 do
    let center = o * (Array.length last - 1) / max 1 outputs in
    Network.add_output net (Printf.sprintf "y%d" o) (window_pick rng last center 3)
  done;
  net

let random_sop_network ~name ~inputs ~outputs ~cubes ~literals () =
  let rng = Prng.of_string name in
  let sops =
    Array.init outputs (fun _ ->
        let cube () =
          let c = ref (Cube.create inputs) in
          for _ = 1 to literals do
            let v = Prng.int rng inputs in
            c := Cube.set !c v (if Prng.bool rng then Cube.Pos else Cube.Neg)
          done;
          !c
        in
        Sop.of_cubes inputs (List.init cubes (fun _ -> cube ())))
  in
  Pla.of_sops sops
