(** The paper's two benchmark suites, with its reported numbers embedded.

    Table II evaluates 25 ISCAS-89/LGsynth91 functions (7–135 inputs) under
    the six optimization columns; Table III compares against the BDD flow
    [11] on the same suite and against the AIG flow [12] on a second suite
    of 25 small functions (3–16 inputs).

    Original netlists are not redistributable, so each entry is either an
    {e exact} re-implementation (the function is mathematically defined:
    parity, rd*, 9sym/sym10, xor5, cm150a = 16:1 mux, cm162a/cm163a =
    comparators, b9-class = adder, alu4 = 4-bit ALU, clip, cordic stage,
    5xp1 = squarer) or a {e deterministic seeded substitute} with the
    paper's input count and a comparable size profile (the apex, seq, misex,
    table5, too_large, x1–x4, sao2, con, exam, max46 and new families).  The
    [exact] flag records which.  The embedded paper numbers let the
    benchmark harness print paper-vs-measured side by side. *)

type pair = { r : int; s : int }
(** (RRAMs, steps) as reported by the paper. *)

type table2_ref = {
  area_imp : pair;
  depth_imp : pair;
  rram_imp : pair;  (** multi-objective, IMP realization *)
  rram_maj : pair;  (** multi-objective, MAJ realization *)
  step_imp : pair;
  step_maj : pair;
  bdd : pair;  (** the BDD flow [11], from Table III (left) *)
}

type table3_ref = {
  aig_steps : int;  (** the AIG flow [12] *)
  mig_imp : pair;  (** paper's MIG numbers on this suite *)
  mig_maj : pair;
}

type reference = Table2_ref of table2_ref | Table3_ref of table3_ref

type entry = {
  name : string;
  inputs : int;
  exact : bool;
  build : unit -> Logic.Network.t;
  reference : reference;
}

val table2 : entry list
(** The 25 large benchmarks of Tables II / III-left. *)

val table3_aig : entry list
(** The 25 small benchmarks of Table III-right. *)

val all : entry list
val find : string -> entry option
