open Logic

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let ni = ref (-1) and no = ref (-1) in
  let ilb = ref None and ob = ref None in
  let cubes = ref [] in
  List.iteri
    (fun i raw ->
      let n = i + 1 in
      let line =
        match String.index_opt raw '#' with Some j -> String.sub raw 0 j | None -> raw
      in
      let line = String.trim line in
      if line <> "" then begin
        let toks = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
        match toks with
        | ".i" :: v :: _ -> ni := int_of_string v
        | ".o" :: v :: _ -> no := int_of_string v
        | ".p" :: _ | ".type" :: _ | ".e" :: _ | ".end" :: _ -> ()
        | ".ilb" :: names -> ilb := Some names
        | ".ob" :: names -> ob := Some names
        | [ input_plane; output_plane ] when input_plane.[0] <> '.' ->
            if !ni < 0 || !no < 0 then fail n "cube before .i/.o";
            if String.length input_plane <> !ni then fail n "input plane width";
            if String.length output_plane <> !no then fail n "output plane width";
            cubes := (n, input_plane, output_plane) :: !cubes
        | [ single ] when !ni = 0 && single.[0] <> '.' ->
            cubes := (n, "", single) :: !cubes
        | _ -> fail n ("malformed PLA line: " ^ line)
      end)
    lines;
  let ni = if !ni < 0 then fail 0 "missing .i" else !ni in
  let no = if !no < 0 then fail 0 "missing .o" else !no in
  let net = Network.create () in
  let input_names =
    match !ilb with
    | Some names when List.length names = ni -> Array.of_list names
    | _ -> Array.init ni (Printf.sprintf "x%d")
  in
  let output_names =
    match !ob with
    | Some names when List.length names = no -> Array.of_list names
    | _ -> Array.init no (Printf.sprintf "y%d")
  in
  let input_ids = Array.map (Network.add_input net) input_names in
  let per_output = Array.make no [] in
  List.iter
    (fun (_, input_plane, output_plane) ->
      let cube = Cube.of_string input_plane in
      String.iteri
        (fun o ch ->
          match ch with
          | '1' | '4' -> per_output.(o) <- cube :: per_output.(o)
          | '0' | '-' | '~' | '2' | '3' -> ()
          | c -> fail 0 (Printf.sprintf "bad output literal %c" c))
        output_plane)
    (List.rev !cubes);
  Array.iteri
    (fun o cubes ->
      let sop = Sop.of_cubes ni (List.rev cubes) in
      let id = Network.gate net (Network.Table sop) input_ids in
      Network.add_output net output_names.(o) id)
    per_output;
  net

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let write_string net =
  let ni = Network.num_inputs net in
  if ni > Truth_table.max_vars then invalid_arg "Pla.write_string: too many inputs";
  let tts = Network.truth_tables net in
  let sops = Array.map Sop.of_truth_table tts in
  let no = Array.length sops in
  (* Collect the union of cubes; output plane marks which outputs each cube
     belongs to (no cube sharing beyond exact equality). *)
  let all_cubes = Hashtbl.create 97 in
  let order = ref [] in
  Array.iteri
    (fun o sop ->
      List.iter
        (fun cube ->
          let key = Cube.to_string cube in
          (match Hashtbl.find_opt all_cubes key with
          | None ->
              Hashtbl.replace all_cubes key (Array.make no false);
              order := key :: !order
          | Some _ -> ());
          (Hashtbl.find all_cubes key).(o) <- true)
        (Sop.cubes sop))
    sops;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".i %d\n.o %d\n" ni no);
  Buffer.add_string buf ".ilb";
  Array.iter (fun n -> Buffer.add_string buf (" " ^ n)) (Network.input_names net);
  Buffer.add_string buf "\n.ob";
  List.iter (fun (n, _) -> Buffer.add_string buf (" " ^ n)) (Network.outputs net);
  Buffer.add_string buf "\n";
  Buffer.add_string buf (Printf.sprintf ".p %d\n" (List.length !order));
  List.iter
    (fun key ->
      let marks = Hashtbl.find all_cubes key in
      Buffer.add_string buf key;
      Buffer.add_char buf ' ';
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) marks;
      Buffer.add_char buf '\n')
    (List.rev !order);
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

let write_file path net =
  let oc = open_out path in
  output_string oc (write_string net);
  close_out oc

let of_sops ?input_names ?output_names sops =
  let ni = if Array.length sops = 0 then 0 else Sop.num_vars sops.(0) in
  let net = Network.create () in
  let input_names =
    match input_names with Some a -> a | None -> Array.init ni (Printf.sprintf "x%d")
  in
  let output_names =
    match output_names with
    | Some a -> a
    | None -> Array.init (Array.length sops) (Printf.sprintf "y%d")
  in
  let input_ids = Array.map (Network.add_input net) input_names in
  Array.iteri
    (fun o sop ->
      let id = Network.gate net (Network.Table sop) input_ids in
      Network.add_output net output_names.(o) id)
    sops;
  net
