lib/io/bench_format.mli: Logic
