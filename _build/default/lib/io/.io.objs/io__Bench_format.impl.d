lib/io/bench_format.ml: Array Buffer Cube Hashtbl List Logic Network Printf Seq Sop String
