lib/io/aiger.ml: Aig Aig_lib Array Buffer Hashtbl List Logic Network Printf String
