lib/io/benchmarks.mli: Logic
