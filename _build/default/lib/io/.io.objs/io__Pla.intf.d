lib/io/pla.mli: Logic
