lib/io/export.ml: Array Buffer Core Hashtbl List Logic Network Printf
