lib/io/export.mli: Core Logic
