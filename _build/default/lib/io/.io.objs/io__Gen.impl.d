lib/io/gen.ml: Array Cube List Logic Network Pla Printf Prng Sop
