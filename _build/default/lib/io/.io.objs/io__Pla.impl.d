lib/io/pla.ml: Array Buffer Cube Hashtbl List Logic Network Printf Sop String Truth_table
