lib/io/blif.ml: Array Buffer Cube Hashtbl List Logic Network Printf Seq Sop String
