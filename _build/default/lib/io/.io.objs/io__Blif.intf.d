lib/io/blif.mli: Logic
