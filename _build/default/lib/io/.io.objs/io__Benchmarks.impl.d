lib/io/benchmarks.ml: Array Espresso Funcgen Gen List Logic Network Pla Sop
