lib/io/aiger.mli: Aig_lib Logic
