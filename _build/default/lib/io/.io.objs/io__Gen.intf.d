lib/io/gen.mli: Logic
