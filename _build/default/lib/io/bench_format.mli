(** ISCAS-89 [.bench] netlist reader and writer.

    Grammar: [INPUT(x)], [OUTPUT(x)], [y = GATE(a, b, ...)] with gates AND,
    OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF, plus the constants
    [y = gnd]/[y = vdd].  [DFF] gates are cut into a pseudo primary input
    (the Q pin) and a pseudo primary output (the D pin) — the combinational
    profile the ISCAS-89 comparison of the paper uses [17]. *)

exception Parse_error of int * string

val parse_string : string -> Logic.Network.t
val parse_file : string -> Logic.Network.t

val parse_sequential_string : string -> Logic.Seq.t
(** Keep the registers explicit instead of only returning the cut network;
    initial state is all-zero (the ISCAS-89 convention). *)

val parse_sequential_file : string -> Logic.Seq.t

val write_string : Logic.Network.t -> string
val write_file : string -> Logic.Network.t -> unit
