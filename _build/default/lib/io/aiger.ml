open Logic

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let parse_string text =
  let lines = String.split_on_char '\n' text |> Array.of_list in
  if Array.length lines = 0 then fail 1 "empty file";
  let header =
    String.split_on_char ' ' (String.trim lines.(0)) |> List.filter (fun s -> s <> "")
  in
  let m, i, l, o, a =
    match header with
    | [ "aag"; m; i; l; o; a ] ->
        (int_of_string m, int_of_string i, int_of_string l, int_of_string o, int_of_string a)
    | _ -> fail 1 "expected 'aag M I L O A' header"
  in
  if l <> 0 then fail 1 "latches are not supported (combinational subset)";
  let net = Network.create () in
  (* var -> network node of the positive literal *)
  let node_of_var = Array.make (m + 1) (-1) in
  let const0 = Network.const net false in
  node_of_var.(0) <- const0;
  let line_no = ref 1 in
  let next_line () =
    incr line_no;
    if !line_no - 1 >= Array.length lines then fail !line_no "unexpected end of file";
    String.trim lines.(!line_no - 1)
  in
  let ints s =
    String.split_on_char ' ' s
    |> List.filter (fun x -> x <> "")
    |> List.map int_of_string
  in
  (* inputs *)
  for k = 0 to i - 1 do
    let lit =
      match ints (next_line ()) with [ v ] -> v | _ -> fail !line_no "bad input line"
    in
    if lit land 1 = 1 then fail !line_no "negated input definition";
    node_of_var.(lit / 2) <- Network.add_input net (Printf.sprintf "i%d" k)
  done;
  (* outputs (literals resolved after ANDs are read) *)
  let output_lits =
    Array.init o (fun _ ->
        match ints (next_line ()) with
        | [ v ] -> v
        | _ -> fail !line_no "bad output line")
  in
  (* AND definitions *)
  let negations = Hashtbl.create 97 in
  let and_defs =
    Array.init a (fun _ ->
        match ints (next_line ()) with
        | [ lhs; r0; r1 ] ->
            if lhs land 1 = 1 then fail !line_no "negated AND definition";
            (lhs, r0, r1)
        | _ -> fail !line_no "bad AND line")
  in
  let literal lit =
    let v = lit / 2 in
    if v > m then fail 0 "literal out of range";
    let base = node_of_var.(v) in
    if base < 0 then fail 0 (Printf.sprintf "undefined variable %d" v);
    if lit land 1 = 0 then base
    else
      match Hashtbl.find_opt negations lit with
      | Some id -> id
      | None ->
          let id = Network.not_ net base in
          Hashtbl.replace negations lit id;
          id
  in
  (* AIGER files are topologically sorted (lhs > rhs), so one pass works. *)
  Array.iter
    (fun (lhs, r0, r1) ->
      let id = Network.and2 net (literal r0) (literal r1) in
      node_of_var.(lhs / 2) <- id)
    and_defs;
  Array.iteri
    (fun k lit -> Network.add_output net (Printf.sprintf "o%d" k) (literal lit))
    output_lits;
  net

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let write_aig aig =
  let open Aig_lib in
  let order = Aig.topo_order aig in
  (* AIGER variable numbering: inputs first, then ANDs in topological
     order. *)
  let var_of = Hashtbl.create 997 in
  Hashtbl.replace var_of 0 0;
  let next = ref 1 in
  for k = 0 to Aig.num_pis aig - 1 do
    Hashtbl.replace var_of (Aig.node_of (Aig.pi aig k)) !next;
    incr next
  done;
  List.iter
    (fun n ->
      Hashtbl.replace var_of n !next;
      incr next)
    order;
  let lit s =
    let v = Hashtbl.find var_of (Aig.node_of s) in
    (2 * v) + if Aig.is_compl s then 1 else 0
  in
  let buf = Buffer.create 4096 in
  let m = !next - 1 in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" m (Aig.num_pis aig) (Aig.num_pos aig)
       (List.length order));
  for k = 0 to Aig.num_pis aig - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (lit (Aig.pi aig k)))
  done;
  Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit s))) (Aig.pos aig);
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins aig n in
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" (2 * Hashtbl.find var_of n) (lit f0) (lit f1)))
    order;
  Buffer.contents buf

let write_network net = write_aig (Aig_lib.Aig_of_network.convert net)

let write_file path aig =
  let oc = open_out path in
  output_string oc (write_aig aig);
  close_out oc
