open Logic

let mig_to_dot mig =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph mig {\n  rankdir=BT;\n";
  Buffer.add_string buf "  n0 [label=\"0\", shape=box, style=filled, fillcolor=gray90];\n";
  for i = 0 to Core.Mig.num_pis mig - 1 do
    let n = Core.Mig.node_of (Core.Mig.pi mig i) in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"x%d\", shape=box, style=filled, fillcolor=lightblue];\n" n i)
  done;
  List.iter
    (fun g ->
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"M\", shape=circle];\n" g);
      Array.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d%s;\n" (Core.Mig.node_of s) g
               (if Core.Mig.is_compl s then " [style=dashed]" else "")))
        (Core.Mig.fanins mig g))
    (Core.Mig.topo_order mig);
  Array.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "  y%d [label=\"y%d\", shape=box, style=filled, fillcolor=lightyellow];\n" i i);
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> y%d%s;\n" (Core.Mig.node_of s) i
           (if Core.Mig.is_compl s then " [style=dashed]" else "")))
    (Core.Mig.pos mig);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let mig_to_verilog ?(module_name = "mig") mig =
  let buf = Buffer.create 4096 in
  let num_pis = Core.Mig.num_pis mig and num_pos = Core.Mig.num_pos mig in
  Buffer.add_string buf (Printf.sprintf "module %s(\n" module_name);
  for i = 0 to num_pis - 1 do
    Buffer.add_string buf (Printf.sprintf "  input  x%d,\n" i)
  done;
  for i = 0 to num_pos - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  output y%d%s\n" i (if i = num_pos - 1 then "" else ","))
  done;
  Buffer.add_string buf ");\n";
  let name_of = Hashtbl.create 97 in
  Hashtbl.replace name_of 0 "1'b0";
  for i = 0 to num_pis - 1 do
    Hashtbl.replace name_of (Core.Mig.node_of (Core.Mig.pi mig i)) (Printf.sprintf "x%d" i)
  done;
  let operand s =
    let base = Hashtbl.find name_of (Core.Mig.node_of s) in
    if Core.Mig.is_compl s then
      if base = "1'b0" then "1'b1" else "~" ^ base
    else base
  in
  List.iter
    (fun g ->
      let w = Printf.sprintf "m%d" g in
      Hashtbl.replace name_of g w;
      Buffer.add_string buf (Printf.sprintf "  wire %s;\n" w))
    (Core.Mig.topo_order mig);
  List.iter
    (fun g ->
      let f = Core.Mig.fanins mig g in
      let a = operand f.(0) and b = operand f.(1) and c = operand f.(2) in
      Buffer.add_string buf
        (Printf.sprintf "  assign m%d = (%s & %s) | (%s & %s) | (%s & %s);\n" g a b a c b c))
    (Core.Mig.topo_order mig);
  Array.iteri
    (fun i s -> Buffer.add_string buf (Printf.sprintf "  assign y%d = %s;\n" i (operand s)))
    (Core.Mig.pos mig);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let network_to_dot net =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph network {\n  rankdir=BT;\n";
  let label id =
    match Network.kind net id with
    | Network.Const b -> if b then "1" else "0"
    | Network.Input k -> Printf.sprintf "x%d" k
    | Network.And -> "AND"
    | Network.Or -> "OR"
    | Network.Xor -> "XOR"
    | Network.Nand -> "NAND"
    | Network.Nor -> "NOR"
    | Network.Xnor -> "XNOR"
    | Network.Not -> "NOT"
    | Network.Buf -> "BUF"
    | Network.Maj -> "MAJ"
    | Network.Mux -> "MUX"
    | Network.Table _ -> "TBL"
  in
  for id = 0 to Network.num_nodes net - 1 do
    let shape =
      match Network.kind net id with
      | Network.Input _ | Network.Const _ -> "box"
      | _ -> "ellipse"
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" id (label id) shape);
    Array.iter
      (fun f -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" f id))
      (Network.fanins net id)
  done;
  List.iteri
    (fun i (name, id) ->
      Buffer.add_string buf (Printf.sprintf "  o%d [label=\"%s\", shape=box];\n" i name);
      Buffer.add_string buf (Printf.sprintf "  n%d -> o%d;\n" id i))
    (Network.outputs net);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
