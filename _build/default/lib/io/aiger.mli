(** ASCII AIGER ([aag]) reader and writer.

    Combinational subset: header [aag M I L O A] with [L = 0] (latches are
    rejected), input literal lines, output literal lines, AND definition
    lines [lhs rhs0 rhs1], and the optional symbol/comment section.
    Literals follow the AIGER convention: [2*var + negation], variable 0 is
    constant false. *)

exception Parse_error of int * string

val parse_string : string -> Logic.Network.t
val parse_file : string -> Logic.Network.t

val write_aig : Aig_lib.Aig.t -> string
(** Serialize an AIG directly (the natural producer). *)

val write_network : Logic.Network.t -> string
(** Convert through {!Aig_lib.Aig_of_network} first. *)

val write_file : string -> Aig_lib.Aig.t -> unit
