open Logic

let simulate mig ins =
  if Array.length ins <> Mig.num_pis mig then invalid_arg "Mig_sim.simulate: input count";
  let width = if Array.length ins = 0 then 1 else Bitvec.width ins.(0) in
  let zero = Bitvec.create width in
  let values = Array.make (Mig.num_nodes mig) zero in
  for i = 0 to Mig.num_pis mig - 1 do
    values.(Mig.node_of (Mig.pi mig i)) <- ins.(i)
  done;
  let value_of s =
    let v = values.(Mig.node_of s) in
    if Mig.is_compl s then Bitvec.bnot v else v
  in
  List.iter
    (fun g ->
      let f = Mig.fanins mig g in
      values.(g) <- Bitvec.maj3 (value_of f.(0)) (value_of f.(1)) (value_of f.(2)))
    (Mig.topo_order mig);
  Array.map value_of (Mig.pos mig)

let eval mig a =
  let ins =
    Array.init (Mig.num_pis mig) (fun i ->
        let bv = Bitvec.create 1 in
        Bitvec.set bv 0 a.(i);
        bv)
  in
  Array.map (fun bv -> Bitvec.get bv 0) (simulate mig ins)

let truth_tables mig =
  let n = Mig.num_pis mig in
  if n > Truth_table.max_vars then invalid_arg "Mig_sim.truth_tables: too many inputs";
  let ins = Array.init n (fun i -> Truth_table.bitvec (Truth_table.var n i)) in
  simulate mig ins
  |> Array.map (fun bv ->
         let tt = Truth_table.create n in
         for w = 0 to Bitvec.num_words bv - 1 do
           Bitvec.set_word (Truth_table.bitvec tt) w (Bitvec.word bv w)
         done;
         tt)
