let check mig =
  let errors = ref [] in
  let error fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let n = Mig.num_nodes mig in
  (* Outputs must not point at dead gates. *)
  Array.iteri
    (fun i s ->
      let g = Mig.node_of s in
      if Mig.kind mig g = Mig.Gate && Mig.is_dead mig g then
        error "output %d driven by dead node %d" i g)
    (Mig.pos mig);
  let seen_triples = Hashtbl.create 997 in
  for g = 0 to n - 1 do
    if Mig.kind mig g = Mig.Gate && not (Mig.is_dead mig g) then begin
      let f = Mig.fanins mig g in
      if Array.length f <> 3 then error "gate %d has %d fanins" g (Array.length f)
      else begin
        (* sortedness and Ω.M normal form *)
        if not (f.(0) < f.(1) && f.(1) < f.(2)) then
          error "gate %d fanins not strictly sorted" g;
        if f.(0) lxor f.(1) = 1 || f.(1) lxor f.(2) = 1 then
          error "gate %d has complementary fanin pair" g;
        (* acyclicity: fanins must be gates created live below g — checked
           via topological reachability *)
        Array.iter
          (fun s ->
            let h = Mig.node_of s in
            if Mig.kind mig h = Mig.Gate && Mig.is_dead mig h then
              error "gate %d has dead fanin %d" g h)
          f;
        (* strash: no two live gates with the same triple *)
        let key = (f.(0), f.(1), f.(2)) in
        (match Hashtbl.find_opt seen_triples key with
        | Some other -> error "gates %d and %d share fanin triple" other g
        | None -> Hashtbl.replace seen_triples key g);
        (* strash lookup must return this gate *)
        (match Mig.lookup mig f.(0) f.(1) f.(2) with
        | Some s when Mig.node_of s = g -> ()
        | Some s -> error "strash maps gate %d's triple to %d" g (Mig.node_of s)
        | None -> error "gate %d missing from the strash table" g);
        (* fanout lists of the fanins must mention g exactly once *)
        Array.iter
          (fun s ->
            let h = Mig.node_of s in
            let count = List.length (List.filter (fun x -> x = g) (Mig.fanout mig h)) in
            if count <> 1 then
              error "fanout list of %d mentions %d %d times" h g count)
          f
      end
    end
  done;
  (* fanout lists must only contain genuine users *)
  for h = 0 to n - 1 do
    if not (Mig.is_dead mig h) then
      List.iter
        (fun g ->
          if Mig.is_dead mig g then error "fanout of %d contains dead %d" h g
          else if
            not (Array.exists (fun s -> Mig.node_of s = h) (Mig.fanins mig g))
          then error "fanout of %d contains non-user %d" h g)
        (Mig.fanout mig h)
  done;
  (* acyclicity: topo_order covers all live reachable gates without revisit,
     which the DFS guarantees unless there is a cycle (stack overflow or a
     gate whose fanin is not earlier in the order). *)
  let position = Hashtbl.create 997 in
  List.iteri (fun i g -> Hashtbl.replace position g i) (Mig.topo_order mig);
  List.iter
    (fun g ->
      Array.iter
        (fun s ->
          let h = Mig.node_of s in
          if Mig.kind mig h = Mig.Gate then
            match (Hashtbl.find_opt position h, Hashtbl.find_opt position g) with
            | Some ph, Some pg when ph >= pg -> error "edge %d -> %d violates topo order" h g
            | None, _ -> error "fanin %d of %d missing from topo order" h g
            | _ -> ())
        (Mig.fanins mig g))
    (Mig.topo_order mig);
  match !errors with
  | [] -> Ok ()
  | errs -> Error (String.concat "; " (List.rev errs))

let check_exn mig =
  match check mig with Ok () -> () | Error msg -> failwith ("Mig_check: " ^ msg)
