(** Export a MIG back to the generic netlist IR (majority gates plus
    explicit inverters), so optimized results can be written to any of the
    supported file formats. *)

val export : Mig.t -> Logic.Network.t
