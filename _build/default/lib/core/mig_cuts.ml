open Logic

type cut = int array
type t = { table : (int, cut list) Hashtbl.t }

let merge3 k a b c =
  let module S = Set.Make (Int) in
  let s = S.union (S.of_list (Array.to_list a)) (S.union (S.of_list (Array.to_list b)) (S.of_list (Array.to_list c))) in
  if S.cardinal s > k then None else Some (Array.of_list (S.elements s))

let dominated existing candidate =
  (* candidate is dominated if some existing cut is a subset of it *)
  List.exists
    (fun cut -> Array.for_all (fun leaf -> Array.exists (fun x -> x = leaf) candidate) cut)
    existing

let enumerate ?(k = 4) ?(max_cuts = 12) mig =
  let table = Hashtbl.create 997 in
  let cuts_of_node n =
    match Mig.kind mig n with
    | Mig.Gate -> ( match Hashtbl.find_opt table n with Some cs -> cs | None -> [ [| n |] ])
    | _ -> [ [| n |] ]
  in
  List.iter
    (fun g ->
      let f = Mig.fanins mig g in
      let ca = cuts_of_node (Mig.node_of f.(0)) in
      let cb = cuts_of_node (Mig.node_of f.(1)) in
      let cc = cuts_of_node (Mig.node_of f.(2)) in
      let merged = ref [] in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              List.iter
                (fun c ->
                  match merge3 k a b c with
                  | Some cut when not (dominated !merged cut) -> merged := cut :: !merged
                  | _ -> ())
                cc)
            cb)
        ca;
      (* prune dominated pairs in both directions, keep smallest cuts *)
      let pruned =
        List.filter
          (fun cut ->
            not
              (List.exists
                 (fun other ->
                   other != cut
                   && Array.length other < Array.length cut
                   && Array.for_all (fun leaf -> Array.exists (fun x -> x = leaf) cut) other)
                 !merged))
          !merged
      in
      let sorted = List.sort (fun a b -> compare (Array.length a) (Array.length b)) pruned in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      Hashtbl.replace table g ([| g |] :: take max_cuts sorted))
    (Mig.topo_order mig);
  { table }

let cuts_of t g =
  match Hashtbl.find_opt t.table g with
  | None -> []
  | Some cs -> List.filter (fun cut -> Array.length cut >= 2 && not (cut = [| g |])) cs

let cone_nodes mig root cut =
  let leaves = Hashtbl.create 7 in
  Array.iter (fun l -> Hashtbl.replace leaves l ()) cut;
  let visited = Hashtbl.create 31 in
  let acc = ref [] in
  let rec visit n =
    if (not (Hashtbl.mem visited n)) && not (Hashtbl.mem leaves n) then begin
      Hashtbl.replace visited n ();
      (match Mig.kind mig n with
      | Mig.Gate ->
          Array.iter (fun s -> visit (Mig.node_of s)) (Mig.fanins mig n);
          acc := n :: !acc
      | _ -> ())
    end
  in
  visit root;
  List.rev !acc (* topological: fanins before root *)

let cut_function mig root cut =
  let nvars = Array.length cut in
  let values = Hashtbl.create 31 in
  Array.iteri (fun i leaf -> Hashtbl.replace values leaf (Truth_table.var nvars i)) cut;
  let value_of s =
    let v = Hashtbl.find values (Mig.node_of s) in
    if Mig.is_compl s then Truth_table.bnot v else v
  in
  List.iter
    (fun n ->
      let f = Mig.fanins mig n in
      Hashtbl.replace values n
        (Truth_table.maj3 (value_of f.(0)) (value_of f.(1)) (value_of f.(2))))
    (cone_nodes mig root cut);
  Hashtbl.find values root

let mffc_size mig root cut =
  let cone = cone_nodes mig root cut in
  let in_mffc = Hashtbl.create 31 in
  Hashtbl.replace in_mffc root ();
  (* process in reverse topological order: a node is in the MFFC when every
     user of it is in the MFFC (the root unconditionally) *)
  List.iter
    (fun n ->
      if n <> root then begin
        let users = Mig.fanout mig n in
        let pos = Mig.po_refs mig n in
        if pos = 0 && users <> [] && List.for_all (fun u -> Hashtbl.mem in_mffc u) users
        then Hashtbl.replace in_mffc n ()
      end)
    (List.rev cone);
  Hashtbl.length in_mffc
