(** Structural integrity checking for MIGs.

    Validates every invariant the rewriting engine relies on:
    sorted distinct-node fanin triples with no complementary pair, fanout
    lists consistent with fanins, structural-hash table consistent with the
    live gates (no duplicate triples), acyclicity, and no dead node
    reachable from an output.  Used by the test-suite after randomized
    rewrite storms; O(n log n). *)

val check : Mig.t -> (unit, string) result

val check_exn : Mig.t -> unit
(** Raises [Failure] with the violation description. *)
