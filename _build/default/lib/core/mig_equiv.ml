open Logic

let exact_limit = 14

let random_patterns ~seed ~rounds n =
  let rng = Prng.create seed in
  List.init rounds (fun _ ->
      Array.init n (fun _ ->
          let bv = Bitvec.create 64 in
          Bitvec.randomize rng bv;
          bv))

(* Include the all-zero / all-one corner vectors in the first round. *)
let with_corners patterns n =
  match patterns with
  | [] -> []
  | first :: rest ->
      let adjusted =
        Array.mapi
          (fun _ bv ->
            let bv = Bitvec.copy bv in
            Bitvec.set bv 0 false;
            Bitvec.set bv 1 true;
            bv)
          first
      in
      ignore n;
      adjusted :: rest

let check_outputs equal_outputs sim_a sim_b patterns =
  List.for_all
    (fun ins ->
      let oa = sim_a ins and ob = sim_b ins in
      equal_outputs oa ob)
    patterns

let equal_bv_arrays a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Bitvec.equal x y) a b

let generic_equivalent ?(rounds = 64) ?(seed = 0xE0A) ~n_a ~n_b ~m_a ~m_b ~sim_a ~sim_b ~tt_a ~tt_b () =
  n_a = n_b && m_a = m_b
  &&
  if n_a <= exact_limit then
    let ta = tt_a () and tb = tt_b () in
    Array.for_all2 Truth_table.equal ta tb
  else
    let patterns = with_corners (random_patterns ~seed ~rounds n_a) n_a in
    check_outputs equal_bv_arrays sim_a sim_b patterns

let equivalent ?rounds ?seed a b =
  generic_equivalent ?rounds ?seed ~n_a:(Mig.num_pis a) ~n_b:(Mig.num_pis b)
    ~m_a:(Mig.num_pos a) ~m_b:(Mig.num_pos b)
    ~sim_a:(Mig_sim.simulate a) ~sim_b:(Mig_sim.simulate b)
    ~tt_a:(fun () -> Mig_sim.truth_tables a)
    ~tt_b:(fun () -> Mig_sim.truth_tables b)
    ()

let equivalent_network ?rounds ?seed mig net =
  generic_equivalent ?rounds ?seed ~n_a:(Mig.num_pis mig)
    ~n_b:(Network.num_inputs net) ~m_a:(Mig.num_pos mig)
    ~m_b:(Network.num_outputs net)
    ~sim_a:(Mig_sim.simulate mig) ~sim_b:(Network.simulate net)
    ~tt_a:(fun () -> Mig_sim.truth_tables mig)
    ~tt_b:(fun () -> Network.truth_tables net)
    ()

let counterexample ?(rounds = 64) ?(seed = 0xE0A) a b =
  if Mig.num_pis a <> Mig.num_pis b || Mig.num_pos a <> Mig.num_pos b then Some [||]
  else begin
    let n = Mig.num_pis a in
    let patterns = with_corners (random_patterns ~seed ~rounds n) n in
    let found = ref None in
    List.iter
      (fun ins ->
        if !found = None then begin
          let oa = Mig_sim.simulate a ins and ob = Mig_sim.simulate b ins in
          Array.iteri
            (fun o va ->
              if !found = None && not (Bitvec.equal va ob.(o)) then begin
                let diff = Bitvec.bxor va ob.(o) in
                let bit = ref (-1) in
                for i = 0 to Bitvec.width diff - 1 do
                  if !bit < 0 && Bitvec.get diff i then bit := i
                done;
                let vec = Array.init n (fun i -> Bitvec.get ins.(i) !bit) in
                found := Some vec
              end)
            oa
        end)
      patterns;
    !found
  end
