(** Equivalence checking between MIGs (and against networks).

    Exact (exhaustive truth tables) for ≤ {!exact_limit} inputs; above that,
    seeded random-vector simulation with a configurable number of 64-bit
    rounds.  Random checking can of course only refute; the test-suite uses
    the exact mode wherever sizes allow. *)

val exact_limit : int
(** 14 inputs (16 K minterms per output). *)

val equivalent : ?rounds:int -> ?seed:int -> Mig.t -> Mig.t -> bool
(** Same number of inputs and outputs and (exactly, or with high confidence)
    the same functions. *)

val equivalent_network : ?rounds:int -> ?seed:int -> Mig.t -> Logic.Network.t -> bool
(** Check a MIG against the network it was derived from. *)

val counterexample : ?rounds:int -> ?seed:int -> Mig.t -> Mig.t -> bool array option
(** A distinguishing input vector, if one is found. *)
