(** Cut-based Boolean rewriting (extension beyond the paper).

    The paper's algorithms are {e algebraic} — they apply the Ω/Ψ identities
    to the existing structure.  This pass is {e Boolean}: for every 4-input
    cut it computes the cut function, canonizes it under NPN, resynthesizes
    the canonical class once (espresso-minimized SOP, built as a balanced
    MIG) and replaces the cut's maximal fanout-free cone whenever the
    resynthesized implementation is strictly smaller.  Function preservation
    is property-checked like every other pass.

    Typical use: an area post-pass after the paper's algorithms
    ([Mig_opt.run] stays faithful to the paper; the CLI exposes this as the
    extra algorithm [bool-rewrite]). *)

val rewrite : ?k:int -> ?passes:int -> Mig.t -> Mig.t
(** Size-oriented Boolean rewriting; returns a compacted equivalent MIG. *)
