(** k-feasible cut enumeration on MIGs.

    A cut of gate [g] is a set of nodes (its {e leaves}) such that every
    path from the inputs to [g] passes through a leaf; [k]-feasible means at
    most [k] leaves.  Cuts are enumerated bottom-up by merging fanin cut
    sets, pruning dominated cuts (supersets of another cut) and keeping at
    most [max_cuts] per gate (smallest first) — the standard network-flow
    folklore algorithm.

    The cut function (truth table over the leaves, in leaf order) drives the
    Boolean rewriting of {!Mig_cut_rewrite}. *)

type cut = int array
(** Sorted node ids. *)

type t
(** Cut sets for every live gate of one MIG snapshot. *)

val enumerate : ?k:int -> ?max_cuts:int -> Mig.t -> t
(** Defaults: [k = 4], [max_cuts = 12].  The trivial cut [{g}] is included
    for gates but not returned by {!cuts_of}. *)

val cuts_of : t -> int -> cut list
(** Non-trivial cuts of a gate (each with ≥ 2 leaves, ≤ k). *)

val cut_function : Mig.t -> int -> cut -> Logic.Truth_table.t
(** Truth table of gate [g] over the cut leaves (variable [i] = leaf [i]). *)

val cone_nodes : Mig.t -> int -> cut -> int list
(** Gates strictly inside the cut (between leaves and root, root included). *)

val mffc_size : Mig.t -> int -> cut -> int
(** Gates of the cone that would die if the root were removed (every fanout
    path stays inside the cone) — the nodes a rewrite can actually save. *)
