open Logic

let export mig =
  let net = Network.create () in
  let map = Hashtbl.create 97 in
  Hashtbl.replace map 0 (Network.const net false);
  for i = 0 to Mig.num_pis mig - 1 do
    Hashtbl.replace map
      (Mig.node_of (Mig.pi mig i))
      (Network.add_input net (Printf.sprintf "x%d" i))
  done;
  (* Share inverters: one NOT gate per complemented node occurrence. *)
  let inverters = Hashtbl.create 97 in
  let value s =
    let id = Hashtbl.find map (Mig.node_of s) in
    if not (Mig.is_compl s) then id
    else
      match Hashtbl.find_opt inverters id with
      | Some inv -> inv
      | None ->
          let inv = Network.not_ net id in
          Hashtbl.replace inverters id inv;
          inv
  in
  List.iter
    (fun g ->
      let f = Mig.fanins mig g in
      Hashtbl.replace map g (Network.maj net (value f.(0)) (value f.(1)) (value f.(2))))
    (Mig.topo_order mig);
  Array.iteri
    (fun i s -> Network.add_output net (Printf.sprintf "y%d" i) (value s))
    (Mig.pos mig);
  net
