(** The RRAM cost model of Table I.

    For a MIG with per-level gate counts [N_i], complemented ingoing edge
    counts [C_i], depth [D] and [L] levels having complemented edges, the
    level-by-level mapping methodology of §III-B costs

    - RRAMs:  [R = max_i (K·N_i + C_i)] with [K = 6] (IMP) or [4] (MAJ);
    - steps:  [S = K·D + L]            with [K = 10] (IMP) or [3] (MAJ).

    These formulas are cross-checked against the actual resource usage and
    step count of the compiled programs in [lib/rram] (see
    [test/test_rram.ml]). *)

type realization = Imp | Maj

val rrams_per_gate : realization -> int
(** 6 for IMP, 4 for MAJ. *)

val steps_per_level : realization -> int
(** 10 for IMP, 3 for MAJ. *)

type cost = { rrams : int; steps : int }

val of_levels : realization -> Mig_levels.t -> cost
val of_mig : realization -> Mig.t -> cost

val pareto_better : cost -> cost -> bool
(** [pareto_better a b]: [a] dominates [b] (≤ in both metrics, < in one). *)

val weighted : ?step_weight:float -> cost -> float
(** Scalarization used by the multi-objective optimizer to accept moves:
    [rrams + step_weight * steps]; the default weight (4.0) reflects the
    paper's position that steps are the dominant cost. *)

val pp : Format.formatter -> cost -> unit

val pp_realization : Format.formatter -> realization -> unit
