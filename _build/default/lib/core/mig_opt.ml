let default_effort = 40

let src = Logs.Src.create "mig.opt" ~doc:"MIG optimization cycle progress"

module Log = (val Logs.src_log src : Logs.LOG)

(* Run [cycle] up to [effort] times on compacted copies, stopping early when
   a cycle reports no change. *)
let drive ?(effort = default_effort) cycle finish mig =
  let current = ref (Mig.cleanup mig) in
  let continue_ = ref true in
  let n = ref 0 in
  while !continue_ && !n < effort do
    let changed = cycle !n !current in
    current := Mig.cleanup !current;
    Log.debug (fun m ->
        let size, depth = Mig_passes.size_and_depth !current in
        m "cycle %d: %d gates, depth %d%s" !n size depth
          (if changed then "" else " (converged)"));
    if not changed then continue_ := false;
    incr n
  done;
  ignore (finish !current);
  Mig.cleanup !current

let area ?effort mig =
  drive ?effort
    (fun cycle m ->
      let c1 = Mig_passes.eliminate m in
      let c2 = Mig_passes.reshape ~seed:(0x5EED + cycle) m in
      let c3 = Mig_passes.eliminate m in
      c1 || c2 || c3)
    Mig_passes.eliminate mig

let depth ?effort mig =
  (* Conventional depth optimization: no Ω.I in the paper's Alg. 2, so its
     push-up cannot look through complemented edges. *)
  let push_up = Mig_passes.push_up ~through_compl:false in
  drive ?effort
    (fun cycle m ->
      let c1 = push_up m in
      (* Ψ.R rebuilds reconvergent cones and rarely converges on its own, so
         it is throttled to every third cycle to stay within the paper's
         interactive-runtime envelope. *)
      let c2 = if cycle mod 3 = 0 then Mig_passes.relevance m else false in
      let c3 = push_up m in
      c1 || c2 || c3)
    push_up mig

let rram_costs ?effort realization mig =
  let push_up = Mig_passes.push_up ~fanout_limit:2 in
  drive ?effort
    (fun _ m ->
      let c1 = push_up m in
      let c2 = Mig_passes.compl_prop (Mig_passes.Weighted realization) m in
      let c3 = push_up m in
      let c4 = Mig_passes.balance m in
      c1 || c2 || c3 || c4)
    push_up mig

let steps ?effort mig =
  drive ?effort
    (fun _ m ->
      let c1 = Mig_passes.push_up m in
      let c2 = Mig_passes.compl_prop ~min_compl:3 Mig_passes.Always m in
      let c3 = Mig_passes.compl_prop ~min_compl:2 Mig_passes.Always m in
      let c4 = Mig_passes.push_up m in
      c1 || c2 || c3 || c4)
    Mig_passes.push_up mig

let boolean ?effort mig =
  (* extension: the paper's area algorithm followed by NPN-cached cut-based
     Boolean rewriting (Mig_cut_rewrite) and a final algebraic clean-up *)
  let algebraic = area ?effort mig in
  let rewritten = Mig_cut_rewrite.rewrite algebraic in
  ignore (Mig_passes.eliminate rewritten);
  Mig.cleanup rewritten

type algorithm =
  | Area
  | Depth
  | Rram_costs of Rram_cost.realization
  | Steps
  | Boolean  (** extension: area + cut-based Boolean rewriting *)

let run ?effort alg mig =
  match alg with
  | Area -> area ?effort mig
  | Depth -> depth ?effort mig
  | Rram_costs r -> rram_costs ?effort r mig
  | Steps -> steps ?effort mig
  | Boolean -> boolean ?effort mig

let algorithm_name = function
  | Area -> "area"
  | Depth -> "depth"
  | Rram_costs Rram_cost.Imp -> "rram-costs-imp"
  | Rram_costs Rram_cost.Maj -> "rram-costs-maj"
  | Steps -> "steps"
  | Boolean -> "bool-rewrite"
