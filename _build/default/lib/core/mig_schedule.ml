let asap = Mig_levels.compute

let alap_array mig =
  let lv = Mig_levels.compute mig in
  let depth = lv.Mig_levels.depth in
  let n = Mig.num_nodes mig in
  let alap = Array.make n depth in
  (* reverse topological pass: each gate must finish before its earliest
     consumer; output drivers may sit anywhere up to the depth *)
  List.iter
    (fun g ->
      List.iter
        (fun h -> if alap.(h) - 1 < alap.(g) then alap.(g) <- alap.(h) - 1)
        (Mig.fanout mig g))
    (List.rev lv.Mig_levels.order);
  (lv, alap)

let alap mig =
  let lv, alap = alap_array mig in
  let level = Array.copy lv.Mig_levels.level in
  List.iter (fun g -> level.(g) <- alap.(g)) lv.Mig_levels.order;
  Mig_levels.of_level_assignment mig level

let balanced mig =
  let lv, alap = alap_array mig in
  let depth = lv.Mig_levels.depth in
  let order = lv.Mig_levels.order in
  let total = List.length order in
  if depth = 0 then lv
  else begin
    let target = max 1 ((total + depth - 1) / depth) in
    let n = Mig.num_nodes mig in
    let assigned = Array.make n 0 in
    let pending_fanins = Array.make n 0 in
    List.iter
      (fun g ->
        Array.iter
          (fun s ->
            if Mig.kind mig (Mig.node_of s) = Mig.Gate then
              pending_fanins.(g) <- pending_fanins.(g) + 1)
          (Mig.fanins mig g))
      order;
    (* ready gates grouped by urgency (alap) *)
    let scheduled = Array.make n false in
    let ready = ref [] in
    List.iter (fun g -> if pending_fanins.(g) = 0 then ready := g :: !ready) order;
    for l = 1 to depth do
      (* urgency order: smallest alap first *)
      let sorted = List.sort (fun a b -> compare alap.(a) alap.(b)) !ready in
      let batch = ref [] and deferred = ref [] and count = ref 0 in
      List.iter
        (fun g ->
          if alap.(g) <= l || !count < target then begin
            batch := g :: !batch;
            incr count
          end
          else deferred := g :: !deferred)
        sorted;
      List.iter
        (fun g ->
          assigned.(g) <- l;
          scheduled.(g) <- true)
        !batch;
      (* release consumers whose fanins are now all scheduled *)
      ready := !deferred;
      List.iter
        (fun g ->
          List.iter
            (fun h ->
              if not scheduled.(h) then begin
                pending_fanins.(h) <- pending_fanins.(h) - 1;
                if pending_fanins.(h) = 0 then ready := h :: !ready
              end)
            (Mig.fanout mig g))
        !batch
    done;
    (* anything left (should not happen) falls back to ASAP *)
    List.iter
      (fun g -> if not scheduled.(g) then assigned.(g) <- lv.Mig_levels.level.(g))
      order;
    Mig_levels.of_level_assignment mig assigned
  end

let is_valid mig (lv : Mig_levels.t) =
  List.for_all
    (fun g ->
      Array.for_all
        (fun s ->
          let h = Mig.node_of s in
          lv.Mig_levels.level.(h) < lv.Mig_levels.level.(g))
        (Mig.fanins mig g))
    lv.Mig_levels.order
