(** Conversion of a {!Logic.Network.t} into a MIG.

    AND/OR become single majority nodes with a constant third fanin; XOR and
    MUX expand to three nodes; n-ary gates fold as balanced trees to keep the
    initial depth low; [Table] gates expand their SOP cover as a balanced
    OR-of-ANDs. *)

val convert : Logic.Network.t -> Mig.t

val of_truth_table : Logic.Truth_table.t -> Mig.t
(** Single-output MIG from a truth table via its minimized SOP cover
    (Shannon-style; intended for small functions and tests). *)
