lib/core/mig_to_network.ml: Array Hashtbl List Logic Mig Network Printf
