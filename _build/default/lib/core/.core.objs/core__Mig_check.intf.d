lib/core/mig_check.mli: Mig
