lib/core/mig_sim.ml: Array Bitvec List Logic Mig Truth_table
