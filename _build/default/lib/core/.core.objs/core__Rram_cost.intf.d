lib/core/rram_cost.mli: Format Mig Mig_levels
