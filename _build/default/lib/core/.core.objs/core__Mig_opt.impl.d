lib/core/mig_opt.ml: Logs Mig Mig_cut_rewrite Mig_passes Rram_cost
