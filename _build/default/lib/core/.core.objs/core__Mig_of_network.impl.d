lib/core/mig_of_network.ml: Array Cube List Logic Mig Network Sop Truth_table
