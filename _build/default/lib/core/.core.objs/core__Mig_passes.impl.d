lib/core/mig_passes.ml: Array Hashtbl List Logic Mig Mig_algebra Mig_levels Prng Rram_cost
