lib/core/mig_schedule.ml: Array List Mig Mig_levels
