lib/core/mig_to_network.mli: Logic Mig
