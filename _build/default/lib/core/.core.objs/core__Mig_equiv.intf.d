lib/core/mig_equiv.mli: Logic Mig
