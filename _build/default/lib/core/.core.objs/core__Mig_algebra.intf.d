lib/core/mig_algebra.mli: Mig
