lib/core/mig_cut_rewrite.mli: Mig
