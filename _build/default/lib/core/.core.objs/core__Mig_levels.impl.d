lib/core/mig_levels.ml: Array Format List Mig
