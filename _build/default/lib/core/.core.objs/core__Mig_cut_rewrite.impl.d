lib/core/mig_cut_rewrite.ml: Array Cube Espresso Hashtbl List Logic Mig Mig_cuts Npn Sop Truth_table
