lib/core/mig_levels.mli: Format Mig
