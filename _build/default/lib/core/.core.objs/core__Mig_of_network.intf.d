lib/core/mig_of_network.mli: Logic Mig
