lib/core/mig_passes.mli: Mig Rram_cost
