lib/core/mig.mli: Format
