lib/core/mig_cuts.mli: Logic Mig
