lib/core/mig.ml: Array Format Hashtbl List
