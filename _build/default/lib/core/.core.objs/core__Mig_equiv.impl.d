lib/core/mig_equiv.ml: Array Bitvec List Logic Mig Mig_sim Network Prng Truth_table
