lib/core/mig_algebra.ml: Array Hashtbl List Mig
