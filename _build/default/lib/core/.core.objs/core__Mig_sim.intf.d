lib/core/mig_sim.mli: Logic Mig
