lib/core/mig_schedule.mli: Mig Mig_levels
