lib/core/mig_check.ml: Array Format Hashtbl List Mig String
