lib/core/mig_cuts.ml: Array Hashtbl Int List Logic Mig Set Truth_table
