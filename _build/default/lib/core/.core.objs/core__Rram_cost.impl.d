lib/core/rram_cost.ml: Array Format Mig_levels
