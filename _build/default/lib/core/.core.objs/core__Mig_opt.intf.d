lib/core/mig_opt.mli: Mig Rram_cost
