(** Level scheduling for the RRAM mapping.

    The Table I cost model charges [R = max_i (K·N_i + C_i)] where [N_i] is
    the number of gates {e evaluated} in step-group [i].  The paper uses the
    structural ASAP levels, but any assignment that respects dependencies
    and keeps the same depth yields the same step count [K·D + L] while
    potentially balancing the level widths — a free RRAM-count reduction.

    {!balanced} implements slack-based list scheduling: gates forced by
    their ALAP level go first, remaining slack-y gates fill levels up to a
    uniform width target (most-urgent first).  The result is returned in
    the {!Mig_levels.t} shape, so {!Rram_cost.of_levels} and the program
    compiler consume it unchanged. *)

val asap : Mig.t -> Mig_levels.t
(** The structural levels (alias of {!Mig_levels.compute}). *)

val alap : Mig.t -> Mig_levels.t
(** Latest feasible levels at the ASAP depth. *)

val balanced : Mig.t -> Mig_levels.t
(** Slack-based width smoothing; never deeper than ASAP. *)

val is_valid : Mig.t -> Mig_levels.t -> bool
(** Every gate strictly above its fanins, outputs within depth. *)
