(** Functional simulation of MIGs.

    Evaluates a MIG on bit-vector patterns (64 test vectors per word) or
    exhaustively as truth tables.  This is the reference semantics every
    rewrite and every compiled RRAM program is checked against. *)

val simulate : Mig.t -> Logic.Bitvec.t array -> Logic.Bitvec.t array
(** One pattern set per primary input (equal widths); one per output. *)

val eval : Mig.t -> bool array -> bool array
(** Single input vector. *)

val truth_tables : Mig.t -> Logic.Truth_table.t array
(** Exact output functions; requires [num_pis ≤ Truth_table.max_vars]. *)
